"""Chaos suite: kill the process (in effigy) at the worst instruction.

Every scenario arms the deterministic fault injector so an instrumented
write dies exactly where a SIGKILL would hurt most, then asserts the
durability contract:

* the WAL never loses a committed record — at most the torn tail of the
  failed append is dropped on recovery;
* ``load_snapshot(verify=True)`` never returns a corrupt snapshot — a torn
  publish either leaves the old file or is rejected;
* the serving layer keeps answering (popularity fallback) while its
  retrieval path is failing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.reliability import FaultError, FaultInjector, inject_faults
from repro.reliability.faults import FAULTS_ENV
from repro.serve import (
    RecommendationService,
    SnapshotIntegrityError,
    build_snapshot,
    load_snapshot,
    manifest_path,
    save_snapshot,
)
from repro.stream import EventLog, WalCorruptionWarning


@pytest.fixture(autouse=True)
def chaos_env(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV, "1")


@pytest.fixture()
def snapshot():
    rng = np.random.default_rng(0)
    users, items = rng.normal(size=(20, 8)), rng.normal(size=(30, 8))
    # Every user gets three training items so nobody is cold-start.
    pairs = np.stack(
        [np.repeat(np.arange(20), 3), np.arange(60) % 30], axis=1
    )
    return build_snapshot(users, items, train_pairs=pairs)


def fill(log: EventLog, count: int, offset: int = 0) -> None:
    for n in range(offset, offset + count):
        log.append(n % 7, n % 11, timestamp=float(n))


class TestWalChaos:
    def test_torn_append_loses_only_the_torn_record(self, tmp_path):
        wal = tmp_path / "events.wal"
        with EventLog.open(wal) as log:
            fill(log, 10)
            # Die mid-write of record #11: a prefix of the frame hits the disk.
            with inject_faults(FaultInjector().arm("wal.write", mode="torn")):
                with pytest.raises(FaultError):
                    log.append(99, 99, timestamp=99.0)
            assert log.next_seq == 10  # memory matches the durable prefix

        with pytest.warns(WalCorruptionWarning, match="torn"):
            recovered = EventLog.open(wal)
        assert recovered.next_seq == 10
        assert [event.user_id for event in recovered.slice(0, 10)] == [
            n % 7 for n in range(10)
        ]
        # Recovery truncated the torn tail: appends work and survive reopen.
        fill(recovered, 3, offset=10)
        recovered.close()
        clean = EventLog.open(wal)  # no warning this time
        assert clean.next_seq == 13
        clean.close()

    def test_fault_before_any_byte_keeps_wal_clean(self, tmp_path):
        wal = tmp_path / "events.wal"
        with EventLog.open(wal) as log:
            fill(log, 5)
            with inject_faults(FaultInjector().arm("wal.append")):
                with pytest.raises(FaultError):
                    log.append(99, 99)
            fill(log, 5, offset=5)  # log remains usable after the fault
            assert log.next_seq == 10

        recovered = EventLog.open(wal)
        assert recovered.next_seq == 10
        recovered.close()

    def test_torn_batch_extend_drops_only_uncommitted_tail(self, tmp_path):
        wal = tmp_path / "events.wal"
        with EventLog.open(wal) as log:
            fill(log, 4)
            users = np.arange(6, dtype=np.int64)
            with inject_faults(
                FaultInjector().arm("wal.write", mode="torn", partial_fraction=0.4)
            ):
                with pytest.raises(FaultError):
                    log.extend(users, users)
            assert log.next_seq == 4  # the batch was never acknowledged

        with pytest.warns(WalCorruptionWarning):
            recovered = EventLog.open(wal)
        # A torn batch may leave whole committed frames before the tear; the
        # contract is: all 4 acknowledged records survive, nothing corrupt
        # is replayed, and the file is usable again.
        assert recovered.next_seq >= 4
        np.testing.assert_array_equal(
            recovered.slice(0, 4).users, [n % 7 for n in range(4)]
        )
        recovered.close()


class TestSnapshotChaos:
    def test_torn_first_publish_leaves_no_readable_snapshot(self, tmp_path, snapshot):
        path = tmp_path / "model.npz"
        with inject_faults(FaultInjector().arm("snapshot.write", mode="torn")):
            with pytest.raises(FaultError):
                save_snapshot(snapshot, path)
        # The tmp file died before the rename: nothing was published.
        assert not path.exists()
        with pytest.raises(FileNotFoundError):
            load_snapshot(path, verify=True)

    def test_torn_republish_preserves_the_old_snapshot(self, tmp_path, snapshot):
        path = save_snapshot(snapshot, tmp_path / "model.npz")
        rng = np.random.default_rng(1)
        newer = build_snapshot(
            rng.normal(size=(20, 8)), rng.normal(size=(30, 8))
        )
        with inject_faults(FaultInjector().arm("snapshot.write", mode="torn")):
            with pytest.raises(FaultError):
                save_snapshot(newer, path)
        loaded = load_snapshot(path, verify=True)
        assert loaded.snapshot_id == snapshot.snapshot_id

    def test_crash_between_archive_and_manifest_fails_closed(
        self, tmp_path, snapshot
    ):
        path = save_snapshot(snapshot, tmp_path / "model.npz")
        rng = np.random.default_rng(2)
        newer = build_snapshot(
            rng.normal(size=(20, 8)), rng.normal(size=(30, 8))
        )
        # The archive rename lands; the process dies before the manifest's.
        with inject_faults(FaultInjector().arm("snapshot.manifest.write")):
            with pytest.raises(FaultError):
                save_snapshot(newer, path)
        with pytest.raises(SnapshotIntegrityError, match="different publishes"):
            load_snapshot(path, verify=True)
        # Unverified load still works (the archive itself is complete), and
        # re-publishing heals the manifest.
        assert load_snapshot(path).snapshot_id == newer.snapshot_id
        save_snapshot(newer, path)
        assert load_snapshot(path, verify=True).snapshot_id == newer.snapshot_id
        assert manifest_path(path).exists()

    def test_verify_rejects_bit_corruption_injected_on_disk(self, tmp_path, snapshot):
        path = save_snapshot(snapshot, tmp_path / "model.npz")
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises((SnapshotIntegrityError, ValueError)):
            load_snapshot(path, verify=True)


class TestServiceChaos:
    def test_service_keeps_answering_through_retrieval_failures(self, snapshot):
        service = RecommendationService(snapshot, default_k=5)
        healthy = service.recommend(3, k=5)
        assert healthy.source == "model"
        assert len(healthy.items) == 5

        def broken(*args, **kwargs):
            raise RuntimeError("index corrupted")

        service.retriever.topk_for_users = broken
        # Every (uncached) query during the outage is answered from popularity.
        for user in range(4, 12):
            degraded = service.recommend(user, k=5)
            assert len(degraded.items) == 5
            assert degraded.source == "popularity"
        assert service.stats.degraded_queries == 8
        assert service.stats.retrieval_errors >= 1
        # The breaker opened, so later queries stop touching the index.
        assert service.breaker.open_count >= 1
        assert service.stats.retrieval_errors < 8

    def test_swap_snapshot_resets_the_breaker(self, snapshot):
        service = RecommendationService(snapshot, default_k=5)
        service.breaker.trip()
        service.swap_snapshot(snapshot)
        assert service.breaker.state == service.breaker.CLOSED
        assert service.recommend(3, k=5).source != "popularity"
