"""Experiment registry completeness."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, get_experiment, list_experiments


class TestRegistry:
    def test_every_paper_artefact_registered(self):
        expected = {"table2", "table3", "table4", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "theorems"}
        assert set(EXPERIMENTS) == expected

    def test_descriptors_complete(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.identifier
            assert experiment.artefact
            assert experiment.description
            assert callable(experiment.runner)

    def test_get_experiment_case_insensitive(self):
        assert get_experiment("TABLE3").identifier == "table3"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            get_experiment("table99")

    def test_list_experiments_sorted(self):
        listed = list_experiments()
        assert listed == sorted(listed)
        assert "fig6" in listed
