"""CLI entry point."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_parses_options(self):
        args = build_parser().parse_args(
            ["run", "fig4", "--epochs", "3", "--dataset-scale", "0.2", "--seed", "7"]
        )
        assert args.experiment == "fig4"
        assert args.epochs == 3
        assert args.dataset_scale == pytest.approx(0.2)
        assert args.seed == 7

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for identifier in ("table2", "table3", "fig4", "fig8", "theorems"):
            assert identifier in output

    def test_datasets_command(self, capsys):
        assert main(["datasets", "--scale", "0.15"]) == 0
        output = capsys.readouterr().out
        for name in ("amazon-book", "yelp", "steam"):
            assert name in output

    def test_run_table2(self, capsys):
        assert main(["run", "table2", "--dataset-scale", "0.15", "--epochs", "1"]) == 0
        output = capsys.readouterr().out
        assert "Dataset summary" in output or "Table II" in output

    def test_run_fig7_small(self, capsys):
        exit_code = main(
            [
                "run",
                "fig7",
                "--dataset-scale",
                "0.12",
                "--epochs",
                "1",
                "--embedding-dim",
                "8",
                "--llm-dim",
                "16",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "recall@10" in output
