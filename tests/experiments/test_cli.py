"""CLI entry point."""

from __future__ import annotations

import pytest

from repro import __version__
from repro.cli import build_parser, main


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_parses_options(self):
        args = build_parser().parse_args(
            ["run", "fig4", "--epochs", "3", "--dataset-scale", "0.2", "--seed", "7"]
        )
        assert args.experiment == "fig4"
        assert args.epochs == 3
        assert args.dataset_scale == pytest.approx(0.2)
        assert args.seed == 7

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_invalid_subcommand_exit_code(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["definitely-not-a-command"])
        assert excinfo.value.code == 2

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestMain:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for identifier in ("table2", "table3", "fig4", "fig8", "theorems"):
            assert identifier in output

    def test_datasets_command(self, capsys):
        assert main(["datasets", "--scale", "0.15"]) == 0
        output = capsys.readouterr().out
        for name in ("amazon-book", "yelp", "steam"):
            assert name in output

    def test_run_table2(self, capsys):
        assert main(["run", "table2", "--dataset-scale", "0.15", "--epochs", "1"]) == 0
        output = capsys.readouterr().out
        assert "Dataset summary" in output or "Table II" in output

    def test_run_fig7_small(self, capsys):
        exit_code = main(
            [
                "run",
                "fig7",
                "--dataset-scale",
                "0.12",
                "--epochs",
                "1",
                "--embedding-dim",
                "8",
                "--llm-dim",
                "16",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "recall@10" in output


class TestServingCommands:
    @pytest.fixture(scope="class")
    def snapshot_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("snapshots") / "cli_model.npz"
        exit_code = main(
            [
                "export-snapshot",
                "--output",
                str(path),
                "--dataset",
                "amazon-book",
                "--backbone",
                "bpr-mf",
                "--variant",
                "baseline",
                "--dataset-scale",
                "0.15",
                "--epochs",
                "1",
            ]
        )
        assert exit_code == 0
        assert path.exists()
        return path

    def test_export_prints_summary(self, snapshot_path, capsys):
        # The fixture already exported; re-run to capture the summary line.
        assert main(
            [
                "export-snapshot",
                "-o",
                str(snapshot_path),
                "--backbone",
                "bpr-mf",
                "--variant",
                "baseline",
                "--dataset-scale",
                "0.15",
                "--epochs",
                "1",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "wrote" in output and "id=" in output

    def test_recommend_serves_without_model_code(self, snapshot_path, capsys):
        assert main(["recommend", "--snapshot", str(snapshot_path), "--user", "0", "-k", "5"]) == 0
        output = capsys.readouterr().out
        assert "model" in output
        assert "top-5" in output

    def test_recommend_ivf_index(self, snapshot_path, capsys):
        exit_code = main(
            ["recommend", "-s", str(snapshot_path), "-u", "0", "-u", "3", "-k", "5", "--index", "ivf"]
        )
        assert exit_code == 0
        assert "(ivf)" in capsys.readouterr().out

    def test_recommend_unknown_user_falls_back(self, snapshot_path, capsys):
        assert main(["recommend", "-s", str(snapshot_path), "-u", "999999", "-k", "3"]) == 0
        assert "popularity" in capsys.readouterr().out

    def test_recommend_requires_snapshot(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recommend", "--user", "0"])


class TestStreamingCommands:
    @pytest.fixture(scope="class")
    def tiny_snapshot_path(self, tmp_path_factory):
        import numpy as np

        from repro.serve import build_snapshot, save_snapshot

        rng = np.random.default_rng(0)
        snapshot = build_snapshot(
            rng.normal(size=(12, 8)),
            rng.normal(size=(20, 8)),
            train_pairs=np.column_stack(
                [rng.integers(0, 12, 60), rng.integers(0, 20, 60)]
            ),
            model_name="cli-test",
        )
        return str(save_snapshot(snapshot, tmp_path_factory.mktemp("stream") / "tiny.npz"))

    def test_stream_simulate_parses(self):
        args = build_parser().parse_args(
            ["stream-simulate", "--events", "500", "--smoke", "--method", "gradient"]
        )
        assert args.command == "stream-simulate"
        assert args.events == 500
        assert args.smoke
        assert args.method == "gradient"

    def test_fold_in_parses(self):
        args = build_parser().parse_args(
            ["fold-in", "-s", "x.npz", "-u", "7", "-i", "1", "-i", "2"]
        )
        assert args.command == "fold-in"
        assert args.user == 7
        assert args.item == [1, 2]

    def test_fold_in_requires_items(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fold-in", "-s", "x.npz", "-u", "7"])

    def test_stream_simulate_smoke_runs(self, capsys):
        assert main(["stream-simulate", "--events", "200", "--smoke"]) == 0
        output = capsys.readouterr().out
        assert "events/sec" in output
        assert "smoke assertions passed" in output

    def test_fold_in_new_user_end_to_end(self, tiny_snapshot_path, capsys):
        exit_code = main(
            [
                "fold-in",
                "--snapshot",
                tiny_snapshot_path,
                "--user",
                "999",
                "--item",
                "1",
                "--item",
                "5",
                "--item",
                "9",
                "-k",
                "5",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "popularity" in output  # before: cold
        assert "model" in output  # after: personalised
        assert "new user" in output

    def test_fold_in_saves_delta(self, tiny_snapshot_path, tmp_path, capsys):
        from repro.serve import load_snapshot

        out = tmp_path / "delta.npz"
        exit_code = main(
            [
                "fold-in",
                "--snapshot",
                tiny_snapshot_path,
                "--user",
                "999",
                "--item",
                "1",
                "--item",
                "5",
                "--item",
                "9",
                "--output",
                str(out),
            ]
        )
        assert exit_code == 0
        delta = load_snapshot(out)
        assert delta.is_delta
        assert delta.num_users == 1000
        assert delta.delta_event_range == (0, 3)


class TestRetrainLoopCommand:
    def test_retrain_loop_parses(self):
        args = build_parser().parse_args(
            [
                "retrain-loop",
                "--directory",
                "/tmp/lc",
                "--events",
                "300",
                "--min-recall-ratio",
                "0.8",
                "--worker",
                "--smoke",
            ]
        )
        assert args.command == "retrain-loop"
        assert args.directory == "/tmp/lc"
        assert args.events == 300
        assert args.min_recall_ratio == pytest.approx(0.8)
        assert args.worker
        assert args.smoke

    def test_retrain_loop_requires_directory(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["retrain-loop"])

    def test_retrain_loop_canary_flags_parse(self):
        args = build_parser().parse_args(
            [
                "retrain-loop",
                "--directory",
                "/tmp/lc",
                "--canary-fraction",
                "0.2",
                "--canary-mode",
                "canary",
                "--schedule",
                "@every 30m",
                "--max-cycles",
                "3",
            ]
        )
        assert args.canary_fraction == pytest.approx(0.2)
        assert args.canary_mode == "canary"
        assert args.schedule == "@every 30m"
        assert args.max_cycles == 3

    def test_retrain_loop_canary_defaults_off(self):
        args = build_parser().parse_args(["retrain-loop", "--directory", "/tmp/lc"])
        assert args.canary_fraction == 0.0
        assert args.canary_mode == "shadow"
        assert args.schedule is None
        assert args.max_cycles == 1

    def test_retrain_loop_rejects_unknown_canary_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["retrain-loop", "--directory", "/tmp/lc", "--canary-mode", "mirror"]
            )


class TestCanaryStatusCommand:
    def test_parses_directory(self):
        args = build_parser().parse_args(["canary-status", "--directory", "/tmp/lc"])
        assert args.command == "canary-status"
        assert args.directory == "/tmp/lc"

    def test_requires_directory(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["canary-status"])

    def test_runs_on_empty_directory(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["canary-status", "--directory", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "run" in out


class TestObservabilityCommands:
    @pytest.fixture(scope="class")
    def snapshot_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs_snapshots") / "obs_model.npz"
        assert main(
            [
                "export-snapshot",
                "-o",
                str(path),
                "--backbone",
                "bpr-mf",
                "--variant",
                "baseline",
                "--dataset-scale",
                "0.15",
                "--epochs",
                "1",
            ]
        ) == 0
        return path

    @pytest.fixture(autouse=True)
    def _reset_observability(self):
        # `recommend --metrics-dump/--trace-dump` flips the process-global
        # switches; a real CLI process exits right after, but in-process test
        # invocations must not leak enabled state into other tests.
        yield
        from repro.obs import disable, disable_tracing

        disable()
        disable_tracing()

    def test_recommend_metrics_dump_is_parseable(self, snapshot_path, tmp_path, capsys):
        from repro.obs import read_metrics_jsonl

        dump = tmp_path / "metrics.jsonl"
        assert main(
            ["recommend", "-s", str(snapshot_path), "-u", "0", "-k", "5",
             "--metrics-dump", str(dump)]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        header, families = read_metrics_jsonl(dump)
        assert header["schema"] == 1
        names = {family["name"] for family in families}
        assert "serve.queries.total" in names
        assert "serve.request.latency_seconds" in names
        queries = next(f for f in families if f["name"] == "serve.queries.total")
        assert queries["series"][0]["value"] == 1

    def test_metrics_dump_command_renders_all_formats(self, snapshot_path, tmp_path, capsys):
        dump = tmp_path / "metrics.jsonl"
        main(["recommend", "-s", str(snapshot_path), "-u", "0", "--metrics-dump", str(dump)])
        capsys.readouterr()
        assert main(["metrics-dump", "-i", str(dump)]) == 0
        assert "serve.queries.total" in capsys.readouterr().out
        assert main(["metrics-dump", "-i", str(dump), "--format", "prometheus"]) == 0
        assert "serve_queries_total 1" in capsys.readouterr().out
        assert main(["metrics-dump", "-i", str(dump), "--format", "json"]) == 0
        import json as json_module

        payload = json_module.loads(capsys.readouterr().out)
        assert payload["meta"]["kind"] == "meta"

    def test_trace_roundtrip_renders_flamegraph(self, snapshot_path, tmp_path, capsys):
        spans = tmp_path / "spans.jsonl"
        assert main(
            ["recommend", "-s", str(snapshot_path), "-u", "0", "--trace-dump", str(spans)]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "-i", str(spans)]) == 0
        rendered = capsys.readouterr().out
        assert "serve.recommend_many" in rendered
        assert "flame:" in rendered

    def test_version_includes_active_snapshot_in_context(
        self, snapshot_path, monkeypatch, capsys
    ):
        from repro.serve import load_snapshot

        expected = load_snapshot(snapshot_path).snapshot_id
        monkeypatch.chdir(snapshot_path.parent)
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        assert f"repro {__version__}" in output
        assert f"(snapshot {expected})" in output

    def test_version_plain_outside_snapshot_context(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SystemExit):
            main(["--version"])
        output = capsys.readouterr().out.strip()
        assert output == f"repro {__version__}"
