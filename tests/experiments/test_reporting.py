"""Reporting helpers."""

from __future__ import annotations

import pytest

from repro.experiments import format_table, metric_columns, print_table, relative_improvement


class TestRelativeImprovement:
    def test_positive_improvement(self):
        assert relative_improvement(0.11, 0.10) == pytest.approx(10.0)

    def test_negative_improvement(self):
        assert relative_improvement(0.09, 0.10) == pytest.approx(-10.0)

    def test_zero_baseline(self):
        assert relative_improvement(0.0, 0.0) == 0.0
        assert relative_improvement(0.5, 0.0) == float("inf")


class TestMetricColumns:
    def test_default_columns(self):
        columns = metric_columns()
        assert columns == [
            "recall@5",
            "recall@10",
            "recall@20",
            "ndcg@5",
            "ndcg@10",
            "ndcg@20",
        ]

    def test_custom_ks(self):
        assert metric_columns((1,)) == ["recall@1", "ndcg@1"]


class TestFormatTable:
    def test_empty_rows(self):
        assert format_table([]) == "(empty table)"

    def test_contains_headers_and_values(self):
        rows = [{"model": "darec", "recall@20": 0.1234567}, {"model": "baseline", "recall@20": 0.1}]
        text = format_table(rows, precision=4)
        assert "model" in text and "recall@20" in text
        assert "0.1235" in text
        assert text.count("\n") >= 3

    def test_missing_cells_rendered_empty(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_table(rows, columns=["a", "b"])
        assert "3" in text

    def test_explicit_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_print_table_writes_title(self, capsys):
        print_table([{"a": 1}], title="Demo Table")
        captured = capsys.readouterr().out
        assert "Demo Table" in captured and "a" in captured
