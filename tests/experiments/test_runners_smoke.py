"""Smoke tests: every experiment runner produces well-formed rows at tiny scale.

These are integration tests across the whole stack (data → LLM simulation →
backbone → alignment → training → evaluation → reporting); the benchmark
harness under ``benchmarks/`` runs the same code at a slightly larger scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ABLATION_SETTINGS,
    ExperimentScale,
    run_fig3_ablation,
    run_fig4_k,
    run_fig5_lambda,
    run_fig6_tsne,
    run_fig7_sampling,
    run_fig8_case_study,
    run_table2,
    run_table3,
    run_table4,
    run_theorem_checks,
)

SMOKE = ExperimentScale(
    dataset_scale=0.12,
    embedding_dim=8,
    llm_dim=16,
    epochs=1,
    darec_sample_size=32,
    darec_shared_dim=8,
)


class TestTableRunners:
    def test_table2_rows(self):
        rows = run_table2(scale=SMOKE)
        assert {row["Dataset"] for row in rows} == {"amazon-book", "yelp", "steam"}
        for row in rows:
            assert row["Interactions"] > 0
            assert 0 < row["Density"] < 1

    def test_table3_single_cell(self):
        rows = run_table3(backbones=("lightgcn",), datasets=("amazon-book",), scale=SMOKE)
        variants = {row["variant"] for row in rows}
        assert variants == {"baseline", "rlmrec-con", "rlmrec-gen", "darec", "improvement-%"}
        metric_rows = [row for row in rows if row["variant"] != "improvement-%"]
        for row in metric_rows:
            assert 0.0 <= row["recall@20"] <= 1.0

    def test_table4_includes_kar(self):
        rows = run_table4(backbones=("lightgcn",), datasets=("yelp",), scale=SMOKE)
        assert {row["variant"] for row in rows} == {"baseline", "rlmrec-con", "rlmrec-gen", "kar", "darec"}
        for row in rows:
            assert "recall@20" in row and "ndcg@20" in row


class TestFigureRunners:
    def test_fig3_ablation_settings(self):
        settings = {"full": (), "(w/o) glo": ("global",)}
        rows = run_fig3_ablation(
            backbones=("lightgcn",), datasets=("amazon-book",), scale=SMOKE, settings=settings
        )
        assert {row["setting"] for row in rows} == set(settings)

    def test_fig3_default_settings_cover_all_losses(self):
        assert set(ABLATION_SETTINGS) == {"full", "(w/o) or", "(w/o) uni", "(w/o) glo", "(w/o) loc"}

    def test_fig4_k_sweep(self):
        rows = run_fig4_k(backbones=("lightgcn",), datasets=("amazon-book",), k_values=(2, 4), scale=SMOKE)
        assert {row["K"] for row in rows} == {2, 4}

    def test_fig5_lambda_sweep(self):
        rows = run_fig5_lambda(backbones=("sgl",), datasets=("yelp",), lambdas=(0.1, 1.0), scale=SMOKE)
        assert {row["lambda"] for row in rows} == {0.1, 1.0}

    def test_fig7_sampling_sweep(self):
        rows = run_fig7_sampling(datasets=("amazon-book",), sample_sizes=(16, 32), scale=SMOKE)
        assert {row["sample_size"] for row in rows} == {16, 32}

    def test_fig6_tsne_quality_rows(self):
        rows = run_fig6_tsne(dataset_name="steam", scale=SMOKE, max_points=40, tsne_iterations=30)
        assert {row["side"] for row in rows} == {"collaborative", "llm"}
        for row in rows:
            assert row["purity"] > 0
            assert np.isfinite(row["separation_ratio"])

    def test_fig8_case_study_rows(self):
        rows = run_fig8_case_study(dataset_name="yelp", scale=SMOKE, min_hops=4, max_pairs=3)
        assert {row["variant"] for row in rows} <= {"baseline", "rlmrec-con", "darec"}
        for row in rows:
            assert row["num_pairs"] >= 1
            assert row["mean_rank"] >= 1

    def test_theorem_checks_rows(self):
        rows = run_theorem_checks(scale=SMOKE, num_codewords=6)
        assert len(rows) == 2
        for row in rows:
            assert row["mutual_information"] >= 0
            assert row["conditional_entropy"] >= 0
