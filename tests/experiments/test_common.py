"""Experiment plumbing: scale handling, variant construction, single runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.align import DaRec, KAR, RLMRecContrastive, RLMRecGenerative
from repro.experiments import (
    ExperimentScale,
    VARIANTS,
    build_dataset_and_semantics,
    build_variant,
    make_backbone,
    run_single,
    train_and_evaluate,
)

FAST = ExperimentScale(dataset_scale=0.15, embedding_dim=8, epochs=1, darec_sample_size=32, llm_dim=16)


class TestExperimentScale:
    def test_smaller_overrides_fields(self):
        scale = ExperimentScale().smaller(epochs=1, embedding_dim=8)
        assert scale.epochs == 1 and scale.embedding_dim == 8
        assert scale.dataset_scale == ExperimentScale().dataset_scale

    def test_variants_constant(self):
        assert set(VARIANTS) == {"baseline", "rlmrec-con", "rlmrec-gen", "kar", "darec"}


class TestBuilders:
    def test_dataset_and_semantics_consistent(self):
        dataset, semantic = build_dataset_and_semantics("amazon-book", FAST)
        assert semantic.num_users == dataset.num_users
        assert semantic.num_items == dataset.num_items
        assert semantic.dim == FAST.llm_dim

    def test_make_backbone_graph_and_mf(self):
        dataset, _ = build_dataset_and_semantics("yelp", FAST)
        graph_model = make_backbone("lightgcn", dataset, FAST)
        assert graph_model.num_layers == FAST.num_layers
        mf_model = make_backbone("bpr-mf", dataset, FAST)
        assert mf_model.embedding_dim == FAST.embedding_dim

    @pytest.mark.parametrize(
        "variant, expected",
        [
            ("baseline", type(None)),
            ("rlmrec-con", RLMRecContrastive),
            ("rlmrec-gen", RLMRecGenerative),
            ("kar", KAR),
            ("darec", DaRec),
        ],
    )
    def test_build_variant_types(self, variant, expected):
        dataset, semantic = build_dataset_and_semantics("steam", FAST)
        backbone = make_backbone("lightgcn", dataset, FAST)
        module = build_variant(variant, backbone, semantic, FAST)
        assert isinstance(module, expected)

    def test_unknown_variant_rejected(self):
        dataset, semantic = build_dataset_and_semantics("steam", FAST)
        backbone = make_backbone("lightgcn", dataset, FAST)
        with pytest.raises(KeyError):
            build_variant("ctrl", backbone, semantic, FAST)

    def test_darec_config_respects_scale(self):
        dataset, semantic = build_dataset_and_semantics("amazon-book", FAST)
        backbone = make_backbone("lightgcn", dataset, FAST)
        module = build_variant("darec", backbone, semantic, FAST)
        assert module.config.sample_size == FAST.darec_sample_size
        assert module.config.num_centers == FAST.darec_num_centers


class TestRunners:
    def test_train_and_evaluate_returns_metrics(self):
        dataset, semantic = build_dataset_and_semantics("amazon-book", FAST)
        backbone = make_backbone("lightgcn", dataset, FAST)
        model, result = train_and_evaluate(backbone, None, dataset, FAST)
        assert set(result.metrics) == {f"{m}@{k}" for m in ("recall", "ndcg") for k in (5, 10, 20)}
        assert model.score_all().shape == (dataset.num_users, dataset.num_items)

    def test_run_single_baseline_and_darec(self):
        _, baseline = run_single("lightgcn", "baseline", "amazon-book", scale=FAST)
        _, darec = run_single("lightgcn", "darec", "amazon-book", scale=FAST)
        for result in (baseline, darec):
            assert all(0.0 <= v <= 1.0 for v in result.metrics.values())

    def test_run_single_custom_trade_off(self):
        _, result = run_single("lightgcn", "darec", "yelp", scale=FAST, trade_off=0.5)
        assert np.isfinite(list(result.metrics.values())).all()

    def test_metrics_are_deterministic_for_fixed_scale(self):
        _, a = run_single("lightgcn", "baseline", "steam", scale=FAST)
        _, b = run_single("lightgcn", "baseline", "steam", scale=FAST)
        assert a.metrics == b.metrics
