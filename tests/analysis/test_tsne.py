"""t-SNE implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import TSNEConfig, pairwise_squared_distances, tsne


def two_blobs(n_per: int = 25, gap: float = 10.0, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    a = rng.normal(0.0, 0.5, size=(n_per, 6))
    b = rng.normal(gap, 0.5, size=(n_per, 6))
    return np.concatenate([a, b]), np.repeat([0, 1], n_per)


class TestPairwiseDistances:
    def test_matches_naive_computation(self):
        data = np.random.default_rng(0).normal(size=(8, 3))
        expected = np.array([[np.sum((x - y) ** 2) for y in data] for x in data])
        np.testing.assert_allclose(pairwise_squared_distances(data), expected, atol=1e-10)

    def test_diagonal_zero_and_nonnegative(self):
        data = np.random.default_rng(1).normal(size=(10, 4))
        distances = pairwise_squared_distances(data)
        np.testing.assert_allclose(np.diag(distances), 0.0)
        assert (distances >= 0).all()


class TestTsne:
    def test_output_shape(self):
        data, _ = two_blobs()
        embedding = tsne(data, TSNEConfig(n_iterations=60, seed=0))
        assert embedding.shape == (len(data), 2)
        assert np.isfinite(embedding).all()

    def test_separates_well_separated_blobs(self):
        data, labels = two_blobs()
        embedding = tsne(data, TSNEConfig(n_iterations=200, seed=0))
        centroid_a = embedding[labels == 0].mean(axis=0)
        centroid_b = embedding[labels == 1].mean(axis=0)
        within = np.mean(
            [np.linalg.norm(embedding[labels == c] - centroid, axis=1).mean()
             for c, centroid in ((0, centroid_a), (1, centroid_b))]
        )
        between = np.linalg.norm(centroid_a - centroid_b)
        assert between > 2.0 * within

    def test_deterministic_given_seed(self):
        data, _ = two_blobs(seed=2)
        a = tsne(data, TSNEConfig(n_iterations=50, seed=3))
        b = tsne(data, TSNEConfig(n_iterations=50, seed=3))
        np.testing.assert_allclose(a, b)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            tsne(np.ones((3, 4)))

    def test_non_matrix_rejected(self):
        with pytest.raises(ValueError):
            tsne(np.ones(10))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TSNEConfig(perplexity=0.5)
        with pytest.raises(ValueError):
            TSNEConfig(n_components=0)
        with pytest.raises(ValueError):
            TSNEConfig(n_iterations=0)

    def test_three_component_embedding(self):
        data, _ = two_blobs(n_per=15)
        embedding = tsne(data, TSNEConfig(n_components=3, n_iterations=40, seed=0))
        assert embedding.shape == (30, 3)

    def test_perplexity_clamped_for_small_inputs(self):
        data = np.random.default_rng(4).normal(size=(10, 5))
        embedding = tsne(data, TSNEConfig(perplexity=50.0, n_iterations=30, seed=0))
        assert np.isfinite(embedding).all()
