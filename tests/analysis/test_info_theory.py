"""Discrete information estimators used for the Theorem 1/2 experiments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    discrete_conditional_entropy,
    discrete_entropy,
    discrete_mutual_information,
    information_gap,
    quantize_representation,
    representation_conditional_entropy,
    representation_mutual_information,
)


class TestDiscreteEstimators:
    def test_entropy_of_uniform_labels(self):
        labels = np.repeat(np.arange(4), 100)
        assert discrete_entropy(labels) == pytest.approx(np.log(4), abs=1e-9)

    def test_entropy_of_constant_labels_is_zero(self):
        assert discrete_entropy(np.zeros(50, dtype=int)) == pytest.approx(0.0)

    def test_entropy_of_empty_sequence(self):
        assert discrete_entropy(np.array([], dtype=int)) == 0.0

    def test_mutual_information_of_identical_variables_equals_entropy(self):
        labels = np.repeat(np.arange(3), 40)
        assert discrete_mutual_information(labels, labels) == pytest.approx(discrete_entropy(labels), abs=1e-9)

    def test_mutual_information_of_independent_variables_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 4, size=20_000)
        y = rng.integers(0, 4, size=20_000)
        assert discrete_mutual_information(x, y) < 0.01

    def test_mutual_information_symmetry(self):
        rng = np.random.default_rng(1)
        x = rng.integers(0, 3, size=500)
        y = (x + rng.integers(0, 2, size=500)) % 3
        assert discrete_mutual_information(x, y) == pytest.approx(discrete_mutual_information(y, x), abs=1e-12)

    def test_mutual_information_nonnegative(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            x = rng.integers(0, 5, size=200)
            y = rng.integers(0, 5, size=200)
            assert discrete_mutual_information(x, y) >= 0.0

    def test_conditional_entropy_identity(self):
        rng = np.random.default_rng(3)
        x = rng.integers(0, 4, size=1000)
        y = rng.integers(0, 3, size=1000)
        expected = discrete_entropy(x) - discrete_mutual_information(x, y)
        assert discrete_conditional_entropy(x, y) == pytest.approx(expected, abs=1e-12)

    def test_conditional_entropy_zero_when_determined(self):
        y = np.repeat(np.arange(4), 25)
        x = y * 2  # deterministic function of y
        assert discrete_conditional_entropy(x, y) == pytest.approx(0.0, abs=1e-9)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            discrete_mutual_information(np.zeros(3, dtype=int), np.zeros(4, dtype=int))

    def test_information_gap_absolute_difference(self):
        y = np.repeat(np.arange(2), 50)
        informative = y.copy()
        uninformative = np.zeros(100, dtype=int)
        gap = information_gap(informative, uninformative, y)
        assert gap == pytest.approx(discrete_mutual_information(informative, y), abs=1e-9)


class TestRepresentationEstimators:
    def test_quantize_shape_and_range(self):
        representation = np.random.default_rng(4).normal(size=(60, 8))
        codes = quantize_representation(representation, num_codewords=8)
        assert codes.shape == (60,)
        assert codes.max() < 8

    def test_informative_representation_has_higher_mi(self):
        rng = np.random.default_rng(5)
        labels = np.repeat(np.arange(4), 50)
        centres = rng.normal(0.0, 5.0, size=(4, 6))
        informative = centres[labels] + 0.1 * rng.normal(size=(200, 6))
        noise = rng.normal(size=(200, 6))
        mi_informative = representation_mutual_information(informative, labels, num_codewords=8)
        mi_noise = representation_mutual_information(noise, labels, num_codewords=8)
        assert mi_informative > mi_noise + 0.3

    def test_conditional_entropy_lower_for_label_aligned_representation(self):
        rng = np.random.default_rng(6)
        labels = np.repeat(np.arange(4), 50)
        centres = rng.normal(0.0, 5.0, size=(4, 6))
        aligned = centres[labels] + 0.05 * rng.normal(size=(200, 6))
        noisy = np.concatenate([aligned, rng.normal(0, 5.0, size=(200, 6))], axis=1)
        h_aligned = representation_conditional_entropy(aligned, labels, num_codewords=8)
        h_noisy = representation_conditional_entropy(noisy, labels, num_codewords=8)
        assert h_aligned <= h_noisy + 1e-9

    def test_non_matrix_rejected(self):
        with pytest.raises(ValueError):
            quantize_representation(np.ones(10))
