"""Long-distance user dependency case study (Fig. 8 machinery)."""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.analysis import (
    build_user_item_graph,
    find_distant_user_pairs,
    pair_relevance,
    relevance_report,
)


class TestGraphConstruction:
    def test_node_counts(self, tiny_dataset):
        graph = build_user_item_graph(tiny_dataset)
        assert graph.number_of_nodes() == tiny_dataset.num_users + tiny_dataset.num_items
        assert graph.number_of_edges() == len(np.unique(tiny_dataset.train, axis=0))

    def test_edges_are_bipartite(self, tiny_dataset):
        graph = build_user_item_graph(tiny_dataset)
        for left, right in graph.edges():
            assert {left[0], right[0]} == {"u", "i"}


class TestDistantPairs:
    def test_pairs_respect_minimum_hops(self, tiny_dataset):
        pairs = find_distant_user_pairs(tiny_dataset, min_hops=4, max_pairs=5, seed=0)
        graph = build_user_item_graph(tiny_dataset)
        for anchor, target, hops in pairs:
            assert hops >= 4
            assert nx.shortest_path_length(graph, f"u{anchor}", f"u{target}") == hops

    def test_max_pairs_respected(self, tiny_dataset):
        pairs = find_distant_user_pairs(tiny_dataset, min_hops=2, max_pairs=3, seed=0)
        assert len(pairs) <= 3

    def test_unreachable_distance_returns_empty(self, tiny_dataset):
        pairs = find_distant_user_pairs(tiny_dataset, min_hops=1000, max_pairs=3, seed=0)
        assert pairs == []

    def test_hop_distances_are_even(self, tiny_dataset):
        # User-to-user paths in a bipartite graph always have even length.
        pairs = find_distant_user_pairs(tiny_dataset, min_hops=2, max_pairs=10, seed=1)
        assert all(hops % 2 == 0 for _, _, hops in pairs)


class TestPairRelevance:
    def test_identical_embeddings_rank_first(self):
        embeddings = np.random.default_rng(0).normal(size=(20, 8))
        embeddings[7] = embeddings[3]
        result = pair_relevance(embeddings, anchor=3, target=7, hop_distance=6)
        assert result.rank == 1
        assert result.relevance_score > 0.999

    def test_opposite_embeddings_rank_last(self):
        rng = np.random.default_rng(1)
        embeddings = rng.normal(size=(10, 4))
        embeddings[5] = -embeddings[2] * 10
        result = pair_relevance(embeddings, anchor=2, target=5)
        assert result.rank == 9  # anchor itself is excluded

    def test_anchor_never_ranked(self):
        embeddings = np.random.default_rng(2).normal(size=(6, 3))
        result = pair_relevance(embeddings, anchor=0, target=3)
        assert 1 <= result.rank <= 5

    def test_relevance_report_covers_all_models(self):
        rng = np.random.default_rng(3)
        models = {"a": rng.normal(size=(12, 4)), "b": rng.normal(size=(12, 4))}
        pairs = [(0, 5, 6), (1, 7, 8)]
        report = relevance_report(models, pairs)
        assert set(report) == {"a", "b"}
        assert all(len(results) == 2 for results in report.values())
        for results in report.values():
            for item, (anchor, target, hops) in zip(results, pairs):
                assert item.anchor == anchor and item.target == target and item.hop_distance == hops
