"""Alignment / uniformity / neighbourhood-overlap representation metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    alignment_metric,
    embedding_quality_report,
    neighborhood_overlap,
    uniformity_metric,
)


class TestAlignmentMetric:
    def test_identical_pairs_give_zero(self):
        x = np.random.default_rng(0).normal(size=(20, 8))
        assert alignment_metric(x, x.copy()) == pytest.approx(0.0, abs=1e-12)

    def test_opposite_pairs_give_maximum(self):
        x = np.random.default_rng(1).normal(size=(10, 4))
        # Antipodal unit vectors are distance 2 apart → squared distance 4.
        assert alignment_metric(x, -x) == pytest.approx(4.0, abs=1e-9)

    def test_smaller_perturbation_better_alignment(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(50, 6))
        small = alignment_metric(x, x + 0.01 * rng.normal(size=x.shape))
        large = alignment_metric(x, x + 1.0 * rng.normal(size=x.shape))
        assert small < large

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            alignment_metric(np.ones((3, 2)), np.ones((4, 2)))


class TestUniformityMetric:
    def test_collapsed_cloud_less_uniform_than_spread(self):
        rng = np.random.default_rng(3)
        collapsed = np.ones((30, 5)) + 1e-3 * rng.normal(size=(30, 5))
        spread = rng.normal(size=(30, 5))
        assert uniformity_metric(spread) < uniformity_metric(collapsed)

    def test_upper_bound_zero(self):
        assert uniformity_metric(np.random.default_rng(4).normal(size=(40, 6))) <= 1e-9

    def test_non_matrix_rejected(self):
        with pytest.raises(ValueError):
            uniformity_metric(np.ones(5))


class TestNeighborhoodOverlap:
    def test_identical_spaces_give_full_overlap(self):
        x = np.random.default_rng(5).normal(size=(25, 6))
        assert neighborhood_overlap(x, x.copy(), k=5) == pytest.approx(1.0)

    def test_unrelated_spaces_give_low_overlap(self):
        rng = np.random.default_rng(6)
        a = rng.normal(size=(60, 8))
        b = rng.normal(size=(60, 8))
        assert neighborhood_overlap(a, b, k=5) < 0.4

    def test_related_spaces_beat_unrelated(self):
        rng = np.random.default_rng(7)
        a = rng.normal(size=(60, 8))
        related = a + 0.1 * rng.normal(size=a.shape)
        unrelated = rng.normal(size=a.shape)
        assert neighborhood_overlap(a, related, k=5) > neighborhood_overlap(a, unrelated, k=5)

    def test_k_clamped_to_population(self):
        x = np.random.default_rng(8).normal(size=(5, 3))
        assert 0.0 <= neighborhood_overlap(x, x, k=50) <= 1.0

    def test_mismatched_instance_counts_rejected(self):
        with pytest.raises(ValueError):
            neighborhood_overlap(np.ones((4, 2)), np.ones((5, 2)))

    def test_too_few_instances_rejected(self):
        with pytest.raises(ValueError):
            neighborhood_overlap(np.ones((2, 2)), np.ones((2, 2)))


class TestReport:
    def test_report_contains_all_metrics(self):
        rng = np.random.default_rng(9)
        collab = rng.normal(size=(30, 6))
        semantic = collab + 0.2 * rng.normal(size=(30, 6))
        report = embedding_quality_report(collab, semantic, k=5)
        assert set(report) == {
            "alignment",
            "uniformity_collaborative",
            "uniformity_semantic",
            "neighborhood_overlap",
        }
        assert np.isfinite(report["alignment"])
        assert 0.0 <= report["neighborhood_overlap"] <= 1.0

    def test_report_with_mismatched_dims_marks_alignment_nan(self):
        rng = np.random.default_rng(10)
        collab = rng.normal(size=(30, 6))
        semantic = rng.normal(size=(30, 12))
        report = embedding_quality_report(collab, semantic, k=5)
        assert np.isnan(report["alignment"])
        assert np.isfinite(report["neighborhood_overlap"])

    def test_darec_shared_spaces_have_positive_overlap(self, lightgcn_backbone, tiny_semantic):
        """End-to-end: DaRec's shared spaces share neighbourhood structure."""
        from repro.align import DaRec, DaRecConfig

        module = DaRec(lightgcn_backbone, tiny_semantic, DaRecConfig(shared_dim=12, sample_size=64))
        nodes = np.arange(40)
        collab_shared, llm_shared = module.shared_representations(nodes=nodes)
        report = embedding_quality_report(collab_shared, llm_shared, k=5)
        assert report["neighborhood_overlap"] >= 0.0
