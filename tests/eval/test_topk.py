"""Shared top-K kernel: correctness and bit-identity with the legacy path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import evaluate_scores, topk, topk_indices
from repro.eval.protocol import RankingEvaluator
from repro.eval.metrics import ndcg_at_k, recall_at_k


def legacy_topk(user_scores: np.ndarray, k: int) -> np.ndarray:
    """The selection the evaluator used before the shared kernel landed."""
    selected = np.argpartition(-user_scores, min(k, len(user_scores) - 1))[:k]
    return selected[np.argsort(-user_scores[selected])]


class TestTopkIndices:
    def test_simple_descending(self):
        scores = np.array([0.1, 5.0, -2.0, 3.0])
        np.testing.assert_array_equal(topk_indices(scores, 2), [1, 3])

    def test_2d_rows_independent(self):
        scores = np.array([[1.0, 2.0, 3.0], [9.0, 0.0, 4.0]])
        np.testing.assert_array_equal(topk_indices(scores, 2), [[2, 1], [0, 2]])

    def test_k_clamped_to_width(self):
        scores = np.array([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(topk_indices(scores, 10), [0, 2, 1])

    def test_unsorted_selection_same_set(self, rng):
        scores = rng.normal(size=(6, 30))
        sorted_ids = topk_indices(scores, 7, sort=True)
        unsorted_ids = topk_indices(scores, 7, sort=False)
        np.testing.assert_array_equal(np.sort(sorted_ids), np.sort(unsorted_ids))

    def test_matches_legacy_per_row_selection_exactly(self, rng):
        """Batched kernel output is bit-identical to the old per-user loop,
        tied scores included."""
        for _ in range(50):
            rows = int(rng.integers(1, 12))
            width = int(rng.integers(1, 40))
            k = int(rng.integers(1, 50))
            scores = rng.integers(0, 5, size=(rows, width)).astype(float)
            batched = topk_indices(scores, k)
            for row in range(rows):
                np.testing.assert_array_equal(batched[row], legacy_topk(scores[row], k))

    def test_topk_returns_values(self):
        scores = np.array([[1.0, 4.0, 2.0]])
        indices, values = topk(scores, 2)
        np.testing.assert_array_equal(indices, [[1, 2]])
        np.testing.assert_array_equal(values, [[4.0, 2.0]])

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            topk_indices(np.ones(4), 0)
        with pytest.raises(ValueError):
            topk_indices(np.ones((2, 2, 2)), 1)
        with pytest.raises(ValueError):
            topk_indices(np.empty(0), 1)


class TestEvaluatorAdoption:
    def legacy_evaluate(self, scores, dataset, ks):
        """Reference reimplementation of the pre-kernel evaluator loop."""
        positives = dataset.user_positives("test")
        train_positives = dataset.train_positives
        max_k = max(ks)
        per_user = {f"recall@{k}": [] for k in ks}
        per_user.update({f"ndcg@{k}": [] for k in ks})
        for user, relevant in positives.items():
            user_scores = scores[user].copy()
            seen = train_positives.get(user)
            if seen is not None and len(seen):
                user_scores[seen] = -np.inf
            top = legacy_topk(user_scores, max_k)
            for k in ks:
                per_user[f"recall@{k}"].append(recall_at_k(top, relevant, k))
                per_user[f"ndcg@{k}"].append(ndcg_at_k(top, relevant, k))
        return {key: float(np.mean(values)) for key, values in per_user.items()}

    def test_identical_to_legacy_loop(self, tiny_dataset, rng):
        scores = rng.normal(size=(tiny_dataset.num_users, tiny_dataset.num_items))
        result = evaluate_scores(scores, tiny_dataset, ks=(5, 10, 20))
        legacy = self.legacy_evaluate(scores, tiny_dataset, ks=(5, 10, 20))
        assert result.metrics == legacy

    def test_identical_with_heavy_ties(self, tiny_dataset, rng):
        # Integer scores force ties everywhere — selection order must still
        # match the legacy path bit for bit.
        scores = rng.integers(0, 4, size=(tiny_dataset.num_users, tiny_dataset.num_items)).astype(float)
        result = evaluate_scores(scores, tiny_dataset, ks=(5, 20))
        legacy = self.legacy_evaluate(scores, tiny_dataset, ks=(5, 20))
        assert result.metrics == legacy

    def test_evaluator_still_works_end_to_end(self, tiny_dataset, lightgcn_backbone):
        result = RankingEvaluator(tiny_dataset, ks=(10,)).evaluate(lightgcn_backbone)
        assert 0.0 <= result.metrics["recall@10"] <= 1.0
