"""Paired significance tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import compare_results, paired_t_test, permutation_test


class TestPairedTTest:
    def test_clear_improvement_is_significant(self):
        rng = np.random.default_rng(0)
        control = rng.normal(0.5, 0.05, size=200)
        treatment = control + 0.05
        result = paired_t_test(treatment, control)
        assert result.significant
        assert result.improved
        assert result.mean_difference == pytest.approx(0.05)

    def test_identical_samples_not_significant(self):
        values = np.random.default_rng(1).normal(size=50)
        result = paired_t_test(values, values.copy())
        assert not result.significant
        assert result.p_value == 1.0

    def test_pure_noise_rarely_significant(self):
        rng = np.random.default_rng(2)
        control = rng.normal(size=100)
        treatment = control + rng.normal(0, 1e-3, size=100) * 0  # exactly equal
        assert not paired_t_test(treatment, control).significant

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            paired_t_test(np.ones(5), np.ones(6))

    def test_too_few_observations_rejected(self):
        with pytest.raises(ValueError):
            paired_t_test(np.ones(1), np.ones(1))

    def test_degradation_detected_as_not_improved(self):
        rng = np.random.default_rng(3)
        control = rng.normal(0.5, 0.05, size=200)
        treatment = control - 0.05
        result = paired_t_test(treatment, control)
        assert result.significant and not result.improved


class TestPermutationTest:
    def test_detects_shift(self):
        rng = np.random.default_rng(4)
        control = rng.normal(0.0, 0.1, size=60)
        treatment = control + 0.2
        assert permutation_test(treatment, control, num_permutations=500).significant

    def test_no_shift_not_significant(self):
        rng = np.random.default_rng(5)
        control = rng.normal(size=60)
        treatment = control + rng.normal(0, 1e-12, size=60)
        assert not permutation_test(treatment, control, num_permutations=500).significant

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            permutation_test(np.ones(4), np.ones(5))


class TestCompareResults:
    def test_compares_named_metric(self):
        rng = np.random.default_rng(6)
        control = {"recall@20": rng.normal(0.4, 0.05, size=100)}
        treatment = {"recall@20": control["recall@20"] + 0.1}
        result = compare_results(treatment, control, "recall@20")
        assert result.improved

    def test_missing_metric_rejected(self):
        with pytest.raises(KeyError):
            compare_results({}, {}, "recall@20")
