"""All-ranking evaluation protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import InteractionDataset
from repro.eval import RankingEvaluator, evaluate_scores


def toy_dataset() -> InteractionDataset:
    train = np.array([[0, 0], [0, 1], [1, 2], [1, 3], [2, 0]])
    valid = np.array([[0, 4]])
    test = np.array([[0, 2], [1, 0], [2, 3]])
    return InteractionDataset("toy", num_users=3, num_items=5, train=train, valid=valid, test=test)


class TestEvaluateScores:
    def test_perfect_scores_give_perfect_recall(self):
        dataset = toy_dataset()
        scores = np.zeros((3, 5))
        scores[0, 2] = 10.0
        scores[1, 0] = 10.0
        scores[2, 3] = 10.0
        result = evaluate_scores(scores, dataset, split="test", ks=(1, 5))
        assert result.metrics["recall@1"] == pytest.approx(1.0)
        assert result.metrics["ndcg@1"] == pytest.approx(1.0)

    def test_train_items_are_masked(self):
        dataset = toy_dataset()
        scores = np.zeros((3, 5))
        # Give the training item the top score: it must not count as the prediction.
        scores[0, 0] = 100.0
        scores[0, 2] = 1.0
        result = evaluate_scores(scores, dataset, split="test", ks=(1,))
        per_user = result.per_user["recall@1"]
        assert per_user[0] == pytest.approx(1.0)

    def test_mask_train_can_be_disabled(self):
        dataset = toy_dataset()
        scores = np.zeros((3, 5))
        scores[0, 0] = 100.0
        result = evaluate_scores(scores, dataset, split="test", ks=(1,), mask_train=False)
        assert result.per_user["recall@1"][0] == pytest.approx(0.0)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            evaluate_scores(np.zeros((2, 2)), toy_dataset())

    def test_empty_split_rejected(self):
        dataset = InteractionDataset(
            "no-test", 2, 2, train=np.array([[0, 0]]), valid=np.empty((0, 2)), test=np.empty((0, 2))
        )
        with pytest.raises(ValueError):
            evaluate_scores(np.zeros((2, 2)), dataset, split="test")

    def test_num_users_counts_only_evaluated_users(self):
        dataset = toy_dataset()
        result = evaluate_scores(np.zeros((3, 5)), dataset, split="valid", ks=(5,))
        assert result.num_users == 1

    def test_metrics_between_zero_and_one(self, tiny_dataset, rng):
        scores = rng.normal(size=(tiny_dataset.num_users, tiny_dataset.num_items))
        result = evaluate_scores(scores, tiny_dataset, ks=(5, 10, 20))
        for value in result.metrics.values():
            assert 0.0 <= value <= 1.0

    def test_result_getitem_and_as_row(self):
        dataset = toy_dataset()
        result = evaluate_scores(np.zeros((3, 5)), dataset, ks=(5,))
        assert result["recall@5"] == result.metrics["recall@5"]
        assert "test/recall@5" in result.as_row(prefix="test/")


class TestRankingEvaluator:
    def test_evaluates_model_with_score_all(self, tiny_dataset):
        class Oracle:
            def score_all(self_inner):
                scores = np.zeros((tiny_dataset.num_users, tiny_dataset.num_items))
                for user, items in tiny_dataset.user_positives("test").items():
                    scores[user, items] = 10.0
                return scores

        evaluator = RankingEvaluator(tiny_dataset, ks=(20,))
        result = evaluator.evaluate(Oracle())
        assert result.metrics["recall@20"] > 0.9

    def test_random_scores_are_weak(self, tiny_dataset, rng):
        class Random:
            def score_all(self_inner):
                return rng.normal(size=(tiny_dataset.num_users, tiny_dataset.num_items))

        evaluator = RankingEvaluator(tiny_dataset, ks=(5,))
        assert evaluator.evaluate(Random()).metrics["recall@5"] < 0.5

    def test_requires_at_least_one_k(self, tiny_dataset):
        with pytest.raises(ValueError):
            RankingEvaluator(tiny_dataset, ks=())

    def test_ks_sorted_and_deduplicated(self, tiny_dataset):
        evaluator = RankingEvaluator(tiny_dataset, ks=(20, 5, 5, 10))
        assert evaluator.ks == (5, 10, 20)
