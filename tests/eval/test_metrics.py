"""Ranking metric unit tests with hand-computed expectations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import (
    hit_rate_at_k,
    mrr_at_k,
    ndcg_at_k,
    precision_at_k,
    rank_metrics,
    recall_at_k,
)

RECOMMENDED = np.array([7, 3, 9, 1, 5])


class TestRecall:
    def test_perfect_recall(self):
        assert recall_at_k(RECOMMENDED, np.array([7, 3]), 5) == 1.0

    def test_partial_recall(self):
        assert recall_at_k(RECOMMENDED, np.array([7, 100]), 5) == 0.5

    def test_zero_recall(self):
        assert recall_at_k(RECOMMENDED, np.array([100, 200]), 5) == 0.0

    def test_cutoff_respected(self):
        # item 9 is at position 3, so k=2 misses it.
        assert recall_at_k(RECOMMENDED, np.array([9]), 2) == 0.0
        assert recall_at_k(RECOMMENDED, np.array([9]), 3) == 1.0

    def test_empty_relevant_set(self):
        assert recall_at_k(RECOMMENDED, np.array([]), 5) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            recall_at_k(RECOMMENDED, np.array([1]), 0)


class TestPrecisionHitMrr:
    def test_precision(self):
        assert precision_at_k(RECOMMENDED, np.array([7, 9]), 5) == pytest.approx(0.4)

    def test_precision_uses_k_as_denominator(self):
        assert precision_at_k(RECOMMENDED, np.array([7]), 2) == pytest.approx(0.5)

    def test_hit_rate(self):
        assert hit_rate_at_k(RECOMMENDED, np.array([5]), 5) == 1.0
        assert hit_rate_at_k(RECOMMENDED, np.array([5]), 4) == 0.0

    def test_mrr_first_position(self):
        assert mrr_at_k(RECOMMENDED, np.array([7]), 5) == 1.0

    def test_mrr_third_position(self):
        assert mrr_at_k(RECOMMENDED, np.array([9]), 5) == pytest.approx(1.0 / 3.0)

    def test_mrr_miss(self):
        assert mrr_at_k(RECOMMENDED, np.array([42]), 5) == 0.0


class TestNdcg:
    def test_perfect_ranking_is_one(self):
        assert ndcg_at_k(np.array([1, 2, 3]), np.array([1, 2, 3]), 3) == pytest.approx(1.0)

    def test_single_relevant_at_second_position(self):
        value = ndcg_at_k(np.array([9, 1, 8]), np.array([1]), 3)
        assert value == pytest.approx(1.0 / np.log2(3.0))

    def test_order_matters(self):
        early = ndcg_at_k(np.array([1, 2, 3, 4]), np.array([1]), 4)
        late = ndcg_at_k(np.array([4, 3, 2, 1]), np.array([1]), 4)
        assert early > late

    def test_ndcg_bounded(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            recommended = rng.permutation(50)[:10]
            relevant = rng.choice(50, size=5, replace=False)
            value = ndcg_at_k(recommended, relevant, 10)
            assert 0.0 <= value <= 1.0

    def test_idcg_uses_min_of_relevant_and_k(self):
        # Two relevant items but k=1: ideal DCG only counts one hit.
        assert ndcg_at_k(np.array([1]), np.array([1, 2]), 1) == pytest.approx(1.0)


class TestRankMetricsBundle:
    def test_contains_all_keys(self):
        metrics = rank_metrics(RECOMMENDED, np.array([7]), ks=(2, 5))
        for k in (2, 5):
            for name in ("recall", "ndcg", "precision", "hit", "mrr"):
                assert f"{name}@{k}" in metrics

    def test_values_consistent_with_individual_functions(self):
        relevant = np.array([3, 5])
        metrics = rank_metrics(RECOMMENDED, relevant, ks=(5,))
        assert metrics["recall@5"] == recall_at_k(RECOMMENDED, relevant, 5)
        assert metrics["ndcg@5"] == ndcg_at_k(RECOMMENDED, relevant, 5)
