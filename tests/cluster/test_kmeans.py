"""K-means clustering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import KMeansResult, assign_to_centers, kmeans


def blobs(k: int = 3, per_cluster: int = 30, spread: float = 0.2, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    centres = rng.normal(0.0, 5.0, size=(k, 4))
    points = np.concatenate(
        [centre + spread * rng.normal(size=(per_cluster, 4)) for centre in centres]
    )
    labels = np.repeat(np.arange(k), per_cluster)
    return points, labels


class TestKMeans:
    def test_recovers_well_separated_blobs(self):
        points, truth = blobs()
        result = kmeans(points, 3, seed=1)
        # Every predicted cluster should be dominated by a single true label.
        for cluster in range(3):
            members = truth[result.labels == cluster]
            assert len(members) > 0
            dominant = np.bincount(members).max()
            assert dominant / len(members) > 0.95

    def test_result_shapes(self):
        points, _ = blobs()
        result = kmeans(points, 4, seed=0)
        assert isinstance(result, KMeansResult)
        assert result.centers.shape == (4, points.shape[1])
        assert result.labels.shape == (len(points),)
        assert result.inertia >= 0

    def test_inertia_decreases_with_more_clusters(self):
        points, _ = blobs(k=4, per_cluster=25, seed=2)
        few = kmeans(points, 2, seed=0).inertia
        many = kmeans(points, 8, seed=0).inertia
        assert many < few

    def test_deterministic_given_seed(self):
        points, _ = blobs(seed=3)
        a = kmeans(points, 3, seed=7)
        b = kmeans(points, 3, seed=7)
        np.testing.assert_allclose(a.centers, b.centers)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_k_greater_than_points(self):
        points = np.random.default_rng(0).normal(size=(5, 3))
        result = kmeans(points, 10, seed=0)
        assert result.centers.shape == (10, 3)
        assert len(np.unique(result.labels)) <= 5

    def test_k_equal_to_points_gives_zero_inertia(self):
        points = np.random.default_rng(1).normal(size=(6, 2))
        result = kmeans(points, 6, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-18)

    def test_identical_points(self):
        points = np.ones((20, 3))
        result = kmeans(points, 3, seed=0)
        assert np.isfinite(result.centers).all()
        assert result.inertia == pytest.approx(0.0, abs=1e-18)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            kmeans(np.ones((5, 2)), 0)
        with pytest.raises(ValueError):
            kmeans(np.ones(5), 2)
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 3)), 2)

    def test_single_cluster(self):
        points, _ = blobs()
        result = kmeans(points, 1, seed=0)
        np.testing.assert_allclose(result.centers[0], points.mean(axis=0), atol=1e-8)


class TestKMeansEdgeCases:
    """Degenerate inputs the IVF serving index must survive (see repro.serve)."""

    def test_k_equals_n_points(self):
        points = np.random.default_rng(2).normal(size=(7, 3))
        result = kmeans(points, 7, seed=0)
        assert result.centers.shape == (7, 3)
        assert result.inertia == pytest.approx(0.0, abs=1e-18)
        # Every point is its own centre, so the assignment is a bijection.
        assert len(np.unique(result.labels)) == 7

    def test_k_far_exceeds_n_points(self):
        points = np.random.default_rng(3).normal(size=(4, 2))
        result = kmeans(points, 25, seed=1)
        assert result.centers.shape == (25, 2)
        assert np.isfinite(result.centers).all()
        assert result.labels.min() >= 0 and result.labels.max() < 25
        assert result.inertia == pytest.approx(0.0, abs=1e-18)

    def test_all_identical_points_many_clusters(self):
        points = np.full((30, 4), 2.5)
        result = kmeans(points, 8, seed=0)
        assert np.isfinite(result.centers).all()
        np.testing.assert_allclose(result.centers, 2.5)
        assert result.inertia == pytest.approx(0.0, abs=1e-18)

    def test_duplicate_heavy_data_triggers_empty_cluster_reseed(self):
        # 28 copies of one point plus two distinct outliers with k=3: at least
        # one initial centre duplicates another, leaving an empty cluster that
        # the Lloyd loop must re-seed rather than emit NaNs.
        points = np.concatenate(
            [np.zeros((28, 2)), np.array([[10.0, 10.0]]), np.array([[-10.0, 4.0]])]
        )
        for seed in range(8):
            result = kmeans(points, 3, seed=seed)
            assert np.isfinite(result.centers).all()
            assert result.labels.shape == (30,)
            # The re-seeded solution must isolate the two outliers perfectly.
            assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_empty_cluster_reassignment_reduces_inertia(self):
        # Two tight, far-apart blobs; k=4 guarantees surplus centres that
        # would empty out without re-seeding at the farthest point.
        rng = np.random.default_rng(9)
        blob_a = rng.normal(0.0, 0.05, size=(20, 2))
        blob_b = rng.normal(0.0, 0.05, size=(20, 2)) + 100.0
        points = np.concatenate([blob_a, blob_b])
        result = kmeans(points, 4, seed=0)
        assert np.isfinite(result.centers).all()
        two = kmeans(points, 2, seed=0)
        assert result.inertia <= two.inertia + 1e-9
        # No centre may be stranded between the blobs.
        consistent = assign_to_centers(points, result.centers)
        np.testing.assert_array_equal(consistent, result.labels)

    def test_single_point(self):
        points = np.array([[1.0, 2.0, 3.0]])
        result = kmeans(points, 1, seed=0)
        np.testing.assert_allclose(result.centers[0], points[0])
        assert result.inertia == pytest.approx(0.0, abs=1e-18)


class TestAssignToCenters:
    def test_assigns_to_nearest(self):
        centers = np.array([[0.0, 0.0], [10.0, 10.0]])
        points = np.array([[1.0, 1.0], [9.0, 9.0], [-2.0, 0.0]])
        np.testing.assert_array_equal(assign_to_centers(points, centers), [0, 1, 0])

    def test_consistent_with_kmeans_labels(self):
        points, _ = blobs(seed=5)
        result = kmeans(points, 3, seed=5)
        np.testing.assert_array_equal(assign_to_centers(points, result.centers), result.labels)
