"""Backbone-specific behaviour beyond the shared contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import AutoCF, BPRMF, DCCF, GCCF, LightGCN, SGL, SimGCL


class TestLightGCN:
    def test_propagation_is_layer_average(self, tiny_dataset):
        model = LightGCN(tiny_dataset, embedding_dim=8, num_layers=2, seed=0)
        users, items = model.propagate()
        joint = np.concatenate([users.data, items.data], axis=0)

        embeddings = np.concatenate(
            [model.user_embedding.weight.data, model.item_embedding.weight.data], axis=0
        )
        adjacency = model.adjacency.toarray()
        layer1 = adjacency @ embeddings
        layer2 = adjacency @ layer1
        expected = (embeddings + layer1 + layer2) / 3.0
        np.testing.assert_allclose(joint, expected, atol=1e-10)

    def test_zero_layers_equals_raw_embeddings(self, tiny_dataset):
        model = LightGCN(tiny_dataset, embedding_dim=8, num_layers=0, seed=0)
        users, _ = model.propagate()
        np.testing.assert_allclose(users.data, model.user_embedding.weight.data)


class TestGCCF:
    def test_output_dim_grows_with_layers(self, tiny_dataset):
        model = GCCF(tiny_dataset, embedding_dim=8, num_layers=3, seed=0)
        assert model.output_dim == 8 * 4
        users, _ = model.propagate()
        assert users.shape[1] == 32

    def test_layer_zero_block_is_raw_embedding(self, tiny_dataset):
        model = GCCF(tiny_dataset, embedding_dim=8, num_layers=1, seed=0)
        users, _ = model.propagate()
        np.testing.assert_allclose(users.data[:, :8], model.user_embedding.weight.data)


class TestSGL:
    def test_views_refresh_on_epoch_start(self, tiny_dataset):
        model = SGL(tiny_dataset, embedding_dim=8, drop_rate=0.3, seed=0)
        before = [view.copy() for view in model._view_adjacency]
        model.on_epoch_start()
        after = model._view_adjacency
        assert any((before[i] != after[i]).nnz > 0 for i in range(2))

    def test_invalid_augmentation_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            SGL(tiny_dataset, augmentation="random-walks")

    def test_ssl_weight_zero_matches_plain_bpr(self, tiny_dataset, bpr_batch):
        plain = SGL(tiny_dataset, embedding_dim=8, ssl_weight=0.0, seed=0)
        loss_plain = plain.bpr_step(bpr_batch).item()
        with_ssl = SGL(tiny_dataset, embedding_dim=8, ssl_weight=0.5, seed=0)
        loss_ssl = with_ssl.bpr_step(bpr_batch).item()
        assert loss_ssl > loss_plain

    def test_node_augmentation_variant(self, tiny_dataset, bpr_batch):
        model = SGL(tiny_dataset, embedding_dim=8, augmentation="node", seed=0)
        assert np.isfinite(model.bpr_step(bpr_batch).item())


class TestSimGCL:
    def test_scoring_propagation_is_deterministic(self, tiny_dataset):
        model = SimGCL(tiny_dataset, embedding_dim=8, seed=0)
        a = model.score_all()
        b = model.score_all()
        np.testing.assert_allclose(a, b)

    def test_perturbed_views_differ(self, tiny_dataset):
        model = SimGCL(tiny_dataset, embedding_dim=8, seed=0, noise_magnitude=0.2)
        view_a = model._propagate(perturb=True).data
        view_b = model._propagate(perturb=True).data
        assert not np.allclose(view_a, view_b)

    def test_noise_magnitude_bounds_perturbation(self, tiny_dataset):
        model = SimGCL(tiny_dataset, embedding_dim=8, seed=0, noise_magnitude=0.05)
        clean = model._propagate(perturb=False).data
        noisy = model._propagate(perturb=True).data
        per_layer_bound = 0.05 * model.num_layers / (model.num_layers + 1)
        row_deviation = np.linalg.norm(noisy - clean, axis=1)
        assert row_deviation.max() <= per_layer_bound * np.sqrt(clean.shape[1]) + 1e-6


class TestDCCF:
    def test_intent_prototypes_receive_gradients(self, tiny_dataset, bpr_batch):
        model = DCCF(tiny_dataset, embedding_dim=8, num_intents=4, seed=0)
        model.bpr_step(bpr_batch).backward()
        assert model.user_intents.grad is not None
        assert np.abs(model.user_intents.grad).sum() > 0

    def test_invalid_num_intents(self, tiny_dataset):
        with pytest.raises(ValueError):
            DCCF(tiny_dataset, num_intents=0)

    def test_intent_view_shape(self, tiny_dataset):
        model = DCCF(tiny_dataset, embedding_dim=8, num_intents=4, seed=0)
        joint = model._propagated()
        intent_view = model._intent_view(joint)
        assert intent_view.shape == joint.shape


class TestAutoCF:
    def test_masked_pairs_tracked(self, tiny_dataset):
        model = AutoCF(tiny_dataset, embedding_dim=8, mask_rate=0.3, seed=0)
        assert len(model._masked_pairs) > 0
        fraction = len(model._masked_pairs) / tiny_dataset.train_matrix.nnz
        assert 0.1 < fraction < 0.5

    def test_reconstruction_loss_positive(self, tiny_dataset):
        model = AutoCF(tiny_dataset, embedding_dim=8, seed=0)
        assert model._reconstruction_loss().item() > 0

    def test_mask_refreshes_each_epoch(self, tiny_dataset):
        model = AutoCF(tiny_dataset, embedding_dim=8, mask_rate=0.3, seed=0)
        before = model._masked_pairs.copy()
        model.on_epoch_start()
        after = model._masked_pairs
        assert before.shape != after.shape or not np.array_equal(before, after)


class TestBPRMF:
    def test_propagate_is_identity_on_tables(self, tiny_dataset):
        model = BPRMF(tiny_dataset, embedding_dim=8, seed=0)
        users, items = model.propagate()
        np.testing.assert_allclose(users.data, model.user_embedding.weight.data)
        np.testing.assert_allclose(items.data, model.item_embedding.weight.data)
