"""Contract tests shared by every collaborative filtering backbone."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.sampling import BprSampler
from repro.models import BACKBONES, BPRMF, GraphRecommender, create_backbone
from repro.nn import Adam

ALL_BACKBONES = sorted(BACKBONES)


def make(name, dataset, **overrides):
    kwargs = {"embedding_dim": 16, "seed": 0}
    if issubclass(BACKBONES[name], GraphRecommender):
        kwargs["num_layers"] = 2
    kwargs.update(overrides)
    return create_backbone(name, dataset, **kwargs)


class TestBackboneContract:
    @pytest.mark.parametrize("name", ALL_BACKBONES)
    def test_propagate_shapes(self, name, tiny_dataset):
        model = make(name, tiny_dataset)
        users, items = model.propagate()
        assert users.shape == (tiny_dataset.num_users, model.output_dim)
        assert items.shape == (tiny_dataset.num_items, model.output_dim)

    @pytest.mark.parametrize("name", ALL_BACKBONES)
    def test_representations_concatenate_users_then_items(self, name, tiny_dataset):
        model = make(name, tiny_dataset)
        joint = model.representations()
        assert joint.shape[0] == tiny_dataset.num_users + tiny_dataset.num_items

    @pytest.mark.parametrize("name", ALL_BACKBONES)
    def test_score_all_shape_and_finite(self, name, tiny_dataset):
        model = make(name, tiny_dataset)
        scores = model.score_all()
        assert scores.shape == (tiny_dataset.num_users, tiny_dataset.num_items)
        assert np.isfinite(scores).all()

    @pytest.mark.parametrize("name", ALL_BACKBONES)
    def test_bpr_step_returns_finite_scalar_with_gradients(self, name, tiny_dataset, bpr_batch):
        model = make(name, tiny_dataset)
        loss = model.bpr_step(bpr_batch)
        assert loss.size == 1
        assert np.isfinite(loss.item())
        loss.backward()
        assert model.user_embedding.weight.grad is not None
        assert np.abs(model.user_embedding.weight.grad).sum() > 0

    @pytest.mark.parametrize("name", ALL_BACKBONES)
    def test_one_epoch_of_training_reduces_loss(self, name, tiny_dataset):
        model = make(name, tiny_dataset)
        sampler = BprSampler(tiny_dataset, batch_size=256, seed=0)
        optimizer = Adam(model.parameters(), lr=0.01)
        losses = []
        for _ in range(6):
            model.on_epoch_start()
            epoch_losses = []
            for batch in sampler.epoch():
                optimizer.zero_grad()
                loss = model.bpr_step(batch)
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())
            losses.append(np.mean(epoch_losses))
        assert losses[-1] < losses[0]

    @pytest.mark.parametrize("name", ALL_BACKBONES)
    def test_on_epoch_start_is_safe_to_call(self, name, tiny_dataset):
        model = make(name, tiny_dataset)
        model.on_epoch_start()
        model.on_epoch_start()

    @pytest.mark.parametrize("name", ALL_BACKBONES)
    def test_deterministic_construction(self, name, tiny_dataset):
        a = make(name, tiny_dataset)
        b = make(name, tiny_dataset)
        np.testing.assert_allclose(a.user_embedding.weight.data, b.user_embedding.weight.data)


class TestFactoryAndValidation:
    def test_unknown_backbone_rejected(self, tiny_dataset):
        with pytest.raises(KeyError):
            create_backbone("ncf", tiny_dataset)

    def test_invalid_embedding_dim(self, tiny_dataset):
        with pytest.raises(ValueError):
            BPRMF(tiny_dataset, embedding_dim=0)

    def test_invalid_num_layers(self, tiny_dataset):
        from repro.models import LightGCN

        with pytest.raises(ValueError):
            LightGCN(tiny_dataset, num_layers=-1)

    def test_embedding_tables_returns_raw_parameters(self, tiny_dataset):
        model = make("lightgcn", tiny_dataset)
        users, items = model.embedding_tables()
        assert users.shape == (tiny_dataset.num_users, 16)
        assert items.shape == (tiny_dataset.num_items, 16)
