"""BPR sampler and N̂ instance sub-sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import BprSampler, UniformPairSampler, sample_instances


class TestBprSampler:
    def test_epoch_covers_all_interactions(self, tiny_dataset):
        sampler = BprSampler(tiny_dataset, batch_size=128, seed=0)
        total = sum(len(batch) for batch in sampler.epoch())
        assert total == len(tiny_dataset.train)

    def test_batch_arrays_aligned(self, tiny_dataset):
        sampler = BprSampler(tiny_dataset, batch_size=64, seed=0)
        batch = next(iter(sampler.epoch()))
        assert len(batch.users) == len(batch.pos_items) == len(batch.neg_items)

    def test_positive_items_are_true_positives(self, tiny_dataset):
        sampler = BprSampler(tiny_dataset, batch_size=256, seed=1)
        positives = tiny_dataset.train_positives
        for batch in sampler.epoch():
            for user, item in zip(batch.users, batch.pos_items):
                assert item in positives[int(user)]
            break

    def test_negative_items_avoid_positives(self, tiny_dataset):
        sampler = BprSampler(tiny_dataset, batch_size=256, seed=2)
        positives = tiny_dataset.train_positives
        collisions = 0
        for batch in sampler.epoch():
            for user, item in zip(batch.users, batch.neg_items):
                if item in positives[int(user)]:
                    collisions += 1
        assert collisions == 0

    def test_len_matches_number_of_batches(self, tiny_dataset):
        sampler = BprSampler(tiny_dataset, batch_size=100, seed=0)
        assert len(sampler) == len(list(sampler.epoch()))

    def test_invalid_batch_size(self, tiny_dataset):
        with pytest.raises(ValueError):
            BprSampler(tiny_dataset, batch_size=0)

    def test_shuffling_differs_between_epochs(self, tiny_dataset):
        sampler = BprSampler(tiny_dataset, batch_size=len(tiny_dataset.train), seed=3)
        first = next(iter(sampler.epoch())).users.copy()
        second = next(iter(sampler.epoch())).users.copy()
        assert not np.array_equal(first, second)


class TestUniformPairSampler:
    def test_ranges(self, tiny_dataset):
        sampler = UniformPairSampler(tiny_dataset, seed=0)
        users, items = sampler.sample(500)
        assert users.min() >= 0 and users.max() < tiny_dataset.num_users
        assert items.min() >= 0 and items.max() < tiny_dataset.num_items
        assert len(users) == len(items) == 500


class TestSampleInstances:
    def test_returns_all_when_sample_exceeds_population(self, rng):
        np.testing.assert_array_equal(sample_instances(10, 50, rng), np.arange(10))

    def test_subsample_size_and_uniqueness(self, rng):
        sample = sample_instances(100, 30, rng)
        assert len(sample) == 30
        assert len(np.unique(sample)) == 30
        assert sample.max() < 100

    def test_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            sample_instances(0, 10, rng)
        with pytest.raises(ValueError):
            sample_instances(10, 0, rng)
