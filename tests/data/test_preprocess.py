"""Preprocessing: rating filter, k-core, sparse 3:1:1 split, full pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import RatingTable, build_dataset, core_filter, sparse_split


def dense_table(num_users: int = 20, num_items: int = 15, per_user: int = 10, seed: int = 0) -> RatingTable:
    rng = np.random.default_rng(seed)
    users, items, ratings = [], [], []
    for user in range(num_users):
        chosen = rng.choice(num_items, size=per_user, replace=False)
        users.extend([user] * per_user)
        items.extend(chosen.tolist())
        ratings.extend(rng.integers(1, 6, size=per_user).tolist())
    return RatingTable(users, items, ratings, num_users, num_items)


class TestSparseSplit:
    def test_ratio_roughly_three_one_one(self):
        table = dense_table()
        train, valid, test = sparse_split(table, seed=0)
        total = len(train) + len(valid) + len(test)
        assert total == len(table)
        assert 0.5 < len(train) / total < 0.7
        assert 0.1 < len(valid) / total < 0.3
        assert 0.1 < len(test) / total < 0.3

    def test_every_user_keeps_training_interactions(self):
        table = dense_table()
        train, _, _ = sparse_split(table, seed=1)
        assert set(np.unique(train[:, 0])) == set(range(20))

    def test_no_pair_duplicated_across_splits(self):
        table = dense_table(seed=3)
        train, valid, test = sparse_split(table, seed=3)
        seen = set()
        for split in (train, valid, test):
            for user, item in split:
                assert (user, item) not in seen
                seen.add((user, item))

    def test_users_with_few_interactions_stay_in_train(self):
        table = RatingTable(
            users=[0, 0, 1], items=[0, 1, 2], ratings=[4, 4, 4], num_users=2, num_items=3
        )
        train, valid, test = sparse_split(table)
        assert len(valid) == 0 and len(test) == 0
        assert len(train) == 3

    def test_deterministic_given_seed(self):
        table = dense_table(seed=5)
        a = sparse_split(table, seed=9)
        b = sparse_split(table, seed=9)
        for left, right in zip(a, b):
            np.testing.assert_array_equal(left, right)

    def test_different_seed_changes_assignment(self):
        table = dense_table(seed=5)
        a_train, _, _ = sparse_split(table, seed=1)
        b_train, _, _ = sparse_split(table, seed=2)
        assert not np.array_equal(np.sort(a_train.view("i8,i8"), order=["f0", "f1"]),
                                  np.sort(b_train.view("i8,i8"), order=["f0", "f1"])) or len(a_train) == 0


class TestCoreFilter:
    def test_low_degree_entities_removed(self):
        # item 4 appears once; user 3 appears once.
        table = RatingTable(
            users=[0, 0, 0, 1, 1, 1, 2, 2, 2, 3],
            items=[0, 1, 2, 0, 1, 2, 0, 1, 2, 4],
            ratings=[4] * 10,
            num_users=4,
            num_items=5,
        )
        filtered = core_filter(table, min_user_degree=2, min_item_degree=2)
        assert 3 not in filtered.users
        assert 4 not in filtered.items

    def test_already_dense_table_unchanged(self):
        table = dense_table(per_user=10)
        filtered = core_filter(table, min_user_degree=2, min_item_degree=2)
        assert len(filtered) == len(table)


class TestBuildDataset:
    def test_pipeline_filters_low_ratings(self):
        table = dense_table(seed=7)
        dataset = build_dataset(table, name="pipeline", min_rating=3.0, seed=7)
        kept = int(np.sum(table.ratings >= 3.0))
        assert dataset.num_interactions <= kept
        assert dataset.name == "pipeline"

    def test_metadata_attached(self):
        table = dense_table(seed=8)
        dataset = build_dataset(table, name="meta", metadata={"flag": 1})
        assert dataset.metadata["flag"] == 1

    def test_threshold_five_keeps_only_top_ratings(self):
        table = dense_table(seed=9)
        dataset = build_dataset(table, name="strict", min_rating=5.0)
        assert dataset.num_interactions == int(np.sum(table.ratings == 5.0))

    def test_dataset_dimensions_preserved(self):
        table = dense_table()
        dataset = build_dataset(table, name="dims")
        assert dataset.num_users == table.num_users
        assert dataset.num_items == table.num_items
