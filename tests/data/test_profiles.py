"""Templated user/item profile generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    InteractionDataset,
    TOPIC_VOCABULARY,
    build_item_profiles,
    build_profiles,
    build_user_profiles,
)


class TestProfiles:
    def test_one_profile_per_entity(self, tiny_dataset):
        users, items = build_profiles(tiny_dataset)
        assert len(users) == tiny_dataset.num_users
        assert len(items) == tiny_dataset.num_items

    def test_profiles_mention_topic_phrases(self, tiny_dataset):
        users, items = build_profiles(tiny_dataset)
        assert any(any(phrase in profile for phrase in TOPIC_VOCABULARY) for profile in users)
        assert all(any(phrase in profile for phrase in TOPIC_VOCABULARY) for profile in items)

    def test_user_profile_mentions_interaction_count(self, tiny_dataset):
        profiles = build_user_profiles(tiny_dataset)
        count = len(tiny_dataset.train_positives.get(0, ()))
        assert f"({count} recorded interactions)" in profiles[0]

    def test_same_topic_users_share_phrase(self, tiny_dataset):
        clusters = np.asarray(tiny_dataset.metadata["user_clusters"])
        profiles = build_user_profiles(tiny_dataset)
        same_topic = np.where(clusters == clusters[0])[0]
        phrase = TOPIC_VOCABULARY[int(clusters[0]) % len(TOPIC_VOCABULARY)]
        assert all(phrase in profiles[user] for user in same_topic)

    def test_missing_metadata_raises(self):
        dataset = InteractionDataset(
            "bare",
            num_users=3,
            num_items=3,
            train=np.array([[0, 0]]),
            valid=np.empty((0, 2)),
            test=np.empty((0, 2)),
        )
        with pytest.raises(KeyError):
            build_user_profiles(dataset)
        with pytest.raises(KeyError):
            build_item_profiles(dataset)
