"""Synthetic benchmark generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    BENCHMARKS,
    SyntheticConfig,
    amazon_book_config,
    generate_dataset,
    generate_rating_table,
    load_benchmark,
    steam_config,
    yelp_config,
)


class TestSyntheticConfig:
    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_users=0)
        with pytest.raises(ValueError):
            SyntheticConfig(num_topics=1)
        with pytest.raises(ValueError):
            SyntheticConfig(interactions_per_user=0)

    def test_scaled_changes_counts_only(self):
        config = SyntheticConfig(num_users=100, num_items=80)
        scaled = config.scaled(0.5)
        assert scaled.num_users == 50 and scaled.num_items == 40
        assert scaled.num_topics == config.num_topics

    def test_scaled_floor(self):
        config = SyntheticConfig(num_users=100, num_items=80)
        tiny = config.scaled(0.01)
        assert tiny.num_users >= 20 and tiny.num_items >= 20

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            SyntheticConfig().scaled(0.0)


class TestGenerateRatingTable:
    def test_basic_shape_and_ranges(self):
        config = SyntheticConfig(num_users=50, num_items=40, seed=1)
        table, metadata = generate_rating_table(config)
        assert table.num_users == 50 and table.num_items == 40
        assert table.ratings.min() >= 1 and table.ratings.max() <= 5
        assert metadata["user_factors"].shape == (50, config.factor_dim)
        assert metadata["item_factors"].shape == (40, config.factor_dim)

    def test_deterministic_given_seed(self):
        config = SyntheticConfig(num_users=30, num_items=25, seed=4)
        table_a, _ = generate_rating_table(config)
        table_b, _ = generate_rating_table(config)
        np.testing.assert_array_equal(table_a.users, table_b.users)
        np.testing.assert_array_equal(table_a.items, table_b.items)
        np.testing.assert_array_equal(table_a.ratings, table_b.ratings)

    def test_different_seeds_differ(self):
        table_a, _ = generate_rating_table(SyntheticConfig(num_users=30, num_items=25, seed=1))
        table_b, _ = generate_rating_table(SyntheticConfig(num_users=30, num_items=25, seed=2))
        assert not np.array_equal(table_a.items, table_b.items)

    def test_affinity_drives_ratings(self):
        """Interactions with items of the user's own topic should rate higher on average."""
        config = SyntheticConfig(num_users=120, num_items=90, num_topics=4, seed=6, rating_noise=0.3)
        table, metadata = generate_rating_table(config)
        user_topics = metadata["user_clusters"][table.users]
        item_topics = metadata["item_clusters"][table.items]
        same = table.ratings[user_topics == item_topics]
        different = table.ratings[user_topics != item_topics]
        assert same.mean() > different.mean()

    def test_popularity_skew_present(self):
        config = SyntheticConfig(num_users=150, num_items=100, seed=7, popularity_weight=0.6)
        table, _ = generate_rating_table(config)
        counts = np.bincount(table.items, minlength=100)
        top_decile = np.sort(counts)[-10:].sum()
        assert top_decile > counts.sum() * 0.15


class TestGenerateDataset:
    def test_splits_present_and_metadata_preserved(self):
        dataset = generate_dataset(SyntheticConfig(num_users=60, num_items=50, seed=2))
        assert len(dataset.train) > 0
        assert len(dataset.valid) > 0
        assert len(dataset.test) > 0
        assert "user_clusters" in dataset.metadata
        assert "config" in dataset.metadata

    def test_min_rating_respected(self):
        lenient = generate_dataset(SyntheticConfig(num_users=60, num_items=50, seed=2), min_rating=1.0)
        strict = generate_dataset(SyntheticConfig(num_users=60, num_items=50, seed=2), min_rating=4.0)
        assert strict.num_interactions < lenient.num_interactions


class TestBenchmarkPresets:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_load_benchmark_small_scale(self, name):
        dataset = load_benchmark(name, scale=0.15)
        assert dataset.name == name
        assert dataset.num_users >= 20
        assert dataset.num_interactions > 0

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            load_benchmark("movielens")

    def test_presets_have_distinct_shapes(self):
        amazon = amazon_book_config()
        yelp = yelp_config()
        steam = steam_config()
        # Steam has the most users per item, mirroring the paper's Table II shape.
        assert steam.num_users / steam.num_items > amazon.num_users / amazon.num_items
        assert yelp.num_items >= amazon.num_items

    def test_custom_seed_passthrough(self):
        a = load_benchmark("yelp", scale=0.15, seed=1)
        b = load_benchmark("yelp", scale=0.15, seed=2)
        assert not np.array_equal(a.train, b.train)
