"""RatingTable and InteractionDataset behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import InteractionDataset, RatingTable


def small_table() -> RatingTable:
    return RatingTable(
        users=[0, 0, 1, 2, 2, 2],
        items=[0, 1, 1, 0, 2, 3],
        ratings=[5, 2, 4, 3, 1, 5],
        num_users=3,
        num_items=4,
    )


class TestRatingTable:
    def test_length(self):
        assert len(small_table()) == 6

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            RatingTable(users=[0, 1], items=[0], ratings=[1, 2], num_users=2, num_items=2)

    def test_out_of_range_user_rejected(self):
        with pytest.raises(ValueError):
            RatingTable(users=[5], items=[0], ratings=[3], num_users=3, num_items=4)

    def test_out_of_range_item_rejected(self):
        with pytest.raises(ValueError):
            RatingTable(users=[0], items=[9], ratings=[3], num_users=3, num_items=4)

    def test_filter_min_rating(self):
        filtered = small_table().filter_min_rating(3.0)
        assert len(filtered) == 4
        assert (filtered.ratings >= 3.0).all()

    def test_append_arrays(self):
        grown = small_table().append([1, 2], [3, 0], [4.0, 2.0])
        assert len(grown) == 8
        assert grown.num_users == 3
        np.testing.assert_array_equal(grown.users[-2:], [1, 2])
        np.testing.assert_array_equal(grown.ratings[-2:], [4.0, 2.0])
        # The original is untouched (append returns a new table).
        assert len(small_table()) == 6

    def test_append_grows_entity_counts(self):
        grown = small_table().append([7], [9], [5.0])
        assert grown.num_users == 8
        assert grown.num_items == 10

    def test_append_default_ratings(self):
        grown = small_table().append([0], [0])
        assert grown.ratings[-1] == 1.0

    def test_append_event_batch(self):
        from repro.stream import EventLog

        log = EventLog()
        log.extend([0, 4], [1, 2], weights=[3.0, 5.0])
        grown = small_table().append(log.slice())
        assert len(grown) == 8
        assert grown.num_users == 5
        np.testing.assert_array_equal(grown.ratings[-2:], [3.0, 5.0])

    def test_append_revalidates_bounds(self):
        with pytest.raises(ValueError):
            small_table().append([-1], [0])

    def test_append_length_mismatch(self):
        with pytest.raises(ValueError):
            small_table().append([0, 1], [0])

    def test_filter_keeps_entity_counts(self):
        filtered = small_table().filter_min_rating(5.0)
        assert filtered.num_users == 3 and filtered.num_items == 4

    def test_deduplicate_keeps_highest_rating(self):
        table = RatingTable(
            users=[0, 0, 0], items=[1, 1, 2], ratings=[2, 5, 3], num_users=1, num_items=3
        )
        deduped = table.deduplicate()
        assert len(deduped) == 2
        pair_rating = {(u, i): r for u, i, r in zip(deduped.users, deduped.items, deduped.ratings)}
        assert pair_rating[(0, 1)] == 5

    def test_empty_table_allowed(self):
        table = RatingTable(users=[], items=[], ratings=[], num_users=2, num_items=2)
        assert len(table) == 0


def build_dataset() -> InteractionDataset:
    train = np.array([[0, 0], [0, 1], [1, 1], [2, 2], [2, 3]])
    valid = np.array([[0, 2], [1, 0]])
    test = np.array([[2, 0], [1, 3]])
    return InteractionDataset("toy", num_users=3, num_items=4, train=train, valid=valid, test=test)


class TestInteractionDataset:
    def test_split_shapes_validated(self):
        with pytest.raises(ValueError):
            InteractionDataset("bad", 2, 2, train=np.zeros((3, 3)), valid=np.zeros((0, 2)), test=np.zeros((0, 2)))

    def test_empty_split_reshaped(self):
        dataset = InteractionDataset("empty-valid", 2, 2, train=np.array([[0, 0]]), valid=np.array([]), test=np.array([[1, 1]]))
        assert dataset.valid.shape == (0, 2)

    def test_train_matrix_binary_and_shape(self):
        dataset = build_dataset()
        matrix = dataset.train_matrix
        assert matrix.shape == (3, 4)
        assert matrix.nnz == 5
        assert set(np.unique(matrix.data)) == {1.0}

    def test_user_positives_train(self):
        dataset = build_dataset()
        positives = dataset.train_positives
        np.testing.assert_array_equal(positives[0], [0, 1])
        np.testing.assert_array_equal(positives[2], [2, 3])

    def test_user_positives_other_split(self):
        dataset = build_dataset()
        positives = dataset.user_positives("test")
        np.testing.assert_array_equal(positives[2], [0])

    def test_num_interactions_and_density(self):
        dataset = build_dataset()
        assert dataset.num_interactions == 9
        assert dataset.density == pytest.approx(9 / 12)

    def test_stats_row(self):
        row = build_dataset().stats().as_row()
        assert row["Dataset"] == "toy"
        assert row["Users"] == 3
        assert row["Interactions"] == 9

    def test_users_in_split(self):
        dataset = build_dataset()
        np.testing.assert_array_equal(dataset.users_in_split("valid"), [0, 1])

    def test_train_positives_cached(self):
        dataset = build_dataset()
        assert dataset.train_positives is dataset.train_positives


class TestRatingTableValidation:
    """Constructor and append reject malformed input with actionable messages."""

    def make(self) -> RatingTable:
        return RatingTable(
            users=np.array([0, 1, 2]),
            items=np.array([0, 1, 0]),
            ratings=np.array([5.0, 3.0, 4.0]),
            num_users=3,
            num_items=2,
        )

    def test_mismatched_lengths_name_the_sizes(self):
        with pytest.raises(ValueError, match=r"equal length.*got 2, 3 and 3"):
            RatingTable(
                users=np.array([0, 1]),
                items=np.array([0, 1, 0]),
                ratings=np.array([1.0, 1.0, 1.0]),
                num_users=3,
                num_items=2,
            )

    def test_out_of_range_user_names_bounds(self):
        with pytest.raises(ValueError, match=r"user index out of range.*valid ids are 0\.\.2"):
            RatingTable(
                users=np.array([0, 5]),
                items=np.array([0, 1]),
                ratings=np.array([1.0, 1.0]),
                num_users=3,
                num_items=2,
            )

    def test_out_of_range_item_names_bounds(self):
        with pytest.raises(ValueError, match=r"item index out of range.*valid ids are 0\.\.1"):
            RatingTable(
                users=np.array([0, 1]),
                items=np.array([0, 7]),
                ratings=np.array([1.0, 1.0]),
                num_users=3,
                num_items=2,
            )

    def test_append_mismatched_lengths(self):
        table = self.make()
        with pytest.raises(ValueError, match=r"parallel arrays.*got 2, 1 and 2"):
            table.append([3, 4], [0], [1.0, 1.0])

    def test_append_negative_user_id(self):
        table = self.make()
        with pytest.raises(ValueError, match=r"negative user id \(-1\)"):
            table.append([-1], [0])

    def test_append_negative_item_id(self):
        table = self.make()
        with pytest.raises(ValueError, match=r"negative item id \(-4\)"):
            table.append([0], [-4])

    def test_append_grows_entity_counts(self):
        table = self.make()
        grown = table.append([5], [9], [2.0])
        assert grown.num_users == 6
        assert grown.num_items == 10
        assert len(grown) == 4
        # The original table is untouched (append is persistent-style).
        assert table.num_users == 3
        assert len(table) == 3

    def test_append_defaults_ratings_to_one(self):
        grown = self.make().append([0, 1], [1, 0])
        np.testing.assert_array_equal(grown.ratings[-2:], [1.0, 1.0])
