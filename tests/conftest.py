"""Shared fixtures: tiny synthetic datasets, semantic embeddings, backbones."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import InteractionDataset, SyntheticConfig, generate_dataset
from repro.data.sampling import BprSampler
from repro.llm import SemanticEmbeddings, SimulatedLLMEncoder
from repro.models import LightGCN


TINY_CONFIG = SyntheticConfig(
    name="tiny",
    num_users=60,
    num_items=50,
    num_topics=4,
    factor_dim=8,
    interactions_per_user=14.0,
    seed=11,
)


@pytest.fixture(scope="session")
def tiny_dataset() -> InteractionDataset:
    """A ~60-user synthetic dataset shared (read-only) by most tests."""
    return generate_dataset(TINY_CONFIG)


@pytest.fixture(scope="session")
def tiny_semantic(tiny_dataset) -> SemanticEmbeddings:
    """Simulated LLM embeddings matching :func:`tiny_dataset`."""
    return SimulatedLLMEncoder(embedding_dim=32, hidden_dim=16, seed=3).encode(tiny_dataset)


@pytest.fixture()
def fresh_dataset() -> InteractionDataset:
    """A new small dataset per test for cases that mutate or rely on metadata."""
    config = SyntheticConfig(
        name="fresh",
        num_users=40,
        num_items=36,
        num_topics=3,
        factor_dim=8,
        interactions_per_user=10.0,
        seed=5,
    )
    return generate_dataset(config)


@pytest.fixture()
def lightgcn_backbone(tiny_dataset) -> LightGCN:
    """A small LightGCN backbone on the shared tiny dataset."""
    return LightGCN(tiny_dataset, embedding_dim=16, num_layers=2, seed=0)


@pytest.fixture()
def bpr_batch(tiny_dataset):
    """One deterministic BPR batch from the tiny dataset."""
    sampler = BprSampler(tiny_dataset, batch_size=64, seed=1)
    return next(iter(sampler.epoch()))


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
