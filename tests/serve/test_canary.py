"""Traffic splitter, guardrail accounting and the canary analyzer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import (
    CanaryAnalyzer,
    GuardrailPolicy,
    GuardrailStats,
    RecommendationService,
    TrafficSplitter,
    build_snapshot,
    cohort_hash,
    ranking_overlap,
)

NUM_USERS, NUM_ITEMS, DIM = 40, 30, 6


def make_snapshot(seed: int, history: int = 3):
    rng = np.random.default_rng(seed)
    pairs = np.stack(
        [
            np.repeat(np.arange(NUM_USERS), history),
            rng.integers(0, NUM_ITEMS, size=history * NUM_USERS),
        ],
        axis=1,
    )
    return build_snapshot(
        rng.normal(size=(NUM_USERS, DIM)),
        rng.normal(size=(NUM_ITEMS, DIM)),
        train_pairs=pairs,
    )


def make_splitter(mode="shadow", candidate_seed=0, fractions=(0.5, 1.0), **kwargs):
    primary = RecommendationService(make_snapshot(0), default_k=5, cache_size=0)
    return primary, TrafficSplitter(
        primary,
        make_snapshot(candidate_seed),
        salt="run-test",
        mode=mode,
        fractions=fractions,
        overlap_k=5,
        **kwargs,
    )


class TestCohortHash:
    def test_deterministic_and_in_range(self):
        for user in range(200):
            value = cohort_hash("salt", user)
            assert 0.0 <= value < 1.0
            assert value == cohort_hash("salt", user)

    def test_salt_changes_assignment(self):
        users = range(500)
        a = {u for u in users if cohort_hash("run-1", u) < 0.3}
        b = {u for u in users if cohort_hash("run-2", u) < 0.3}
        assert a != b  # different rollouts draw different cohorts

    def test_cohorts_are_nested_under_ramp(self):
        # Every user in at 10% is still in at 50% — ramping never reshuffles.
        users = range(1000)
        small = {u for u in users if cohort_hash("s", u) < 0.1}
        large = {u for u in users if cohort_hash("s", u) < 0.5}
        assert small <= large

    def test_fraction_is_approximately_respected(self):
        users = range(5000)
        hit = sum(1 for u in users if cohort_hash("s", u) < 0.2)
        assert 0.15 < hit / 5000 < 0.25


class TestRankingOverlap:
    def test_identical_and_disjoint(self):
        a = np.array([1, 2, 3, 4, 5])
        assert ranking_overlap(a, a, k=5) == 1.0
        assert ranking_overlap(a, a + 100, k=5) == 0.0

    def test_order_insensitive(self):
        assert ranking_overlap(np.array([1, 2, 3]), np.array([3, 1, 2]), k=3) == 1.0

    def test_short_lists_count_as_disagreement(self):
        assert ranking_overlap(np.array([1, 2]), np.array([1, 2]), k=4) == 0.5

    def test_empty_lists_agree(self):
        empty = np.array([], dtype=np.int64)
        assert ranking_overlap(empty, empty, k=3) == 1.0

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            ranking_overlap(np.array([1]), np.array([1]), k=0)


class TestShadowMode:
    def test_all_queries_served_by_primary(self):
        primary, splitter = make_splitter(candidate_seed=1)
        users = list(range(NUM_USERS))
        results = splitter.recommend_many(users, k=5)
        assert len(results) == NUM_USERS
        assert all(r.snapshot_id == primary.snapshot.snapshot_id for r in results)
        assert splitter.stats.primary_queries == NUM_USERS
        assert splitter.stats.cohort_queries == 0
        # Cohort queries were mirrored, not yet compared.
        assert splitter.stats.mirror_enqueued > 0
        assert splitter.mirror_depth > 0

    def test_drain_scores_identical_candidate_at_full_overlap(self):
        _, splitter = make_splitter(candidate_seed=0)  # same embeddings
        splitter.recommend_many(list(range(NUM_USERS)), k=5)
        compared = splitter.drain()
        assert compared == splitter.stats.mirror_enqueued > 0
        assert splitter.stats.shadow_compared == compared
        assert splitter.stats.mean_overlap == 1.0
        assert splitter.mirror_depth == 0

    def test_different_candidate_scores_below_full_overlap(self):
        _, splitter = make_splitter(candidate_seed=7)
        splitter.recommend_many(list(range(NUM_USERS)), k=5)
        splitter.drain()
        assert 0.0 <= splitter.stats.mean_overlap < 1.0

    def test_full_mirror_queue_sheds_instead_of_blocking(self):
        _, splitter = make_splitter(candidate_seed=1, mirror_queue_size=1)
        users = list(range(NUM_USERS))
        # Each call enqueues at most one batch; the second call must shed.
        splitter.recommend_many(users, k=5)
        splitter.recommend_many(users, k=5)
        assert splitter.stats.mirror_dropped > 0
        # Shedding never failed a user query.
        assert splitter.stats.primary_queries == 2 * NUM_USERS

    def test_drain_max_batches_bounds_work(self):
        _, splitter = make_splitter(candidate_seed=1, mirror_queue_size=8)
        for _ in range(3):
            splitter.recommend_many(list(range(NUM_USERS)), k=5)
        splitter.drain(max_batches=1)
        assert splitter.mirror_depth == 2


class TestCanaryMode:
    def test_cohort_served_by_candidate_rest_by_primary(self):
        primary, splitter = make_splitter(mode="canary", candidate_seed=1)
        users = list(range(NUM_USERS))
        results = splitter.recommend_many(users, k=5)
        cohort = {u for u in users if splitter.in_cohort(u)}
        assert cohort  # 50% fraction over 40 users
        candidate_id = splitter.candidate.snapshot.snapshot_id
        for user, rec in zip(users, results):
            expected = candidate_id if user in cohort else primary.snapshot.snapshot_id
            assert rec.snapshot_id == expected
        assert splitter.stats.cohort_queries == len(cohort)
        assert splitter.stats.candidate_attempts == len(cohort)

    def test_candidate_failure_degrades_to_popularity_not_error(self, monkeypatch):
        primary, splitter = make_splitter(mode="canary", candidate_seed=1)

        def boom(*args, **kwargs):
            raise RuntimeError("candidate melted")

        monkeypatch.setattr(splitter.candidate, "recommend_many", boom)
        users = list(range(NUM_USERS))
        results = splitter.recommend_many(users, k=5)
        # Every user still got an answer; cohort answers are popularity
        # fallbacks served through the *primary* service.
        assert len(results) == NUM_USERS
        cohort = {u for u in users if splitter.in_cohort(u)}
        for user, rec in zip(users, results):
            if user in cohort:
                assert rec.source == "popularity"
                assert rec.snapshot_id == primary.snapshot.snapshot_id
        assert splitter.stats.candidate_errors == len(cohort)
        assert splitter.stats.error_rate == 1.0

    def test_candidate_degradations_are_absorbed_into_guardrails(self, monkeypatch):
        _, splitter = make_splitter(mode="canary", candidate_seed=1)

        def broken_retrieval(*args, **kwargs):
            raise RuntimeError("index corrupt")

        # The candidate *service* degrades internally (answers popularity);
        # the splitter must still count that as candidate degradation.
        monkeypatch.setattr(
            splitter.candidate.retriever, "topk_for_users", broken_retrieval
        )
        splitter.recommend_many(list(range(NUM_USERS)), k=5)
        assert splitter.stats.candidate_degraded > 0
        assert splitter.stats.candidate_errors == 0  # service never raised


class TestRamp:
    def test_ramp_advances_and_resets_phase_window(self):
        _, splitter = make_splitter(candidate_seed=0, fractions=(0.25, 0.75))
        splitter.recommend_many(list(range(NUM_USERS)), k=5)
        splitter.drain()
        before = splitter.stats.samples
        assert before > 0
        assert splitter.samples_this_phase == before
        assert not splitter.at_final_fraction
        assert splitter.ramp() == 0.75
        assert splitter.samples_this_phase == 0  # window reset
        assert splitter.stats.samples == before  # cumulative evidence kept
        assert splitter.at_final_fraction
        with pytest.raises(RuntimeError):
            splitter.ramp()

    def test_cohort_only_grows_across_ramp(self):
        _, splitter = make_splitter(candidate_seed=0, fractions=(0.2, 0.8))
        small = {u for u in range(NUM_USERS) if splitter.in_cohort(u)}
        splitter.ramp()
        large = {u for u in range(NUM_USERS) if splitter.in_cohort(u)}
        assert small <= large
        assert len(large) > len(small)


class TestStateRoundtrip:
    def test_state_dict_restore_preserves_guardrails_and_cohort(self):
        _, splitter = make_splitter(candidate_seed=1, fractions=(0.3, 0.9))
        splitter.recommend_many(list(range(NUM_USERS)), k=5)
        splitter.drain()
        splitter.ramp()
        state = splitter.state_dict()

        _, rebuilt = make_splitter(candidate_seed=1, fractions=(0.3, 0.9))
        rebuilt.restore(state)
        assert rebuilt.fraction == splitter.fraction
        assert rebuilt.stats.as_dict() == splitter.stats.as_dict()
        assert rebuilt.samples_this_phase == splitter.samples_this_phase
        # Deterministic cohort: no user flaps between arms across restore.
        for user in range(NUM_USERS):
            assert rebuilt.in_cohort(user) == splitter.in_cohort(user)

    def test_restore_refuses_foreign_salt(self):
        _, splitter = make_splitter()
        state = splitter.state_dict()
        state["salt"] = "some-other-run"
        with pytest.raises(ValueError, match="flap"):
            splitter.restore(state)

    def test_guardrail_stats_dict_roundtrip(self):
        stats = GuardrailStats(
            shadow_compared=10, overlap_sum=7.5, candidate_attempts=12, candidate_errors=2
        )
        restored = GuardrailStats.from_dict(stats.as_dict())
        assert restored == stats
        assert restored.mean_overlap == 0.75


class TestAnalyzer:
    def healthy(self, samples=100):
        return GuardrailStats(
            shadow_compared=samples,
            overlap_sum=0.9 * samples,
            candidate_attempts=samples,
            primary_latency_sum=0.001,
            primary_latency_calls=1,
            candidate_latency_sum=0.001,
            candidate_latency_calls=1,
        )

    def test_extend_while_evidence_is_thin(self):
        analyzer = CanaryAnalyzer(GuardrailPolicy(min_samples=50))
        decision = analyzer.decide(self.healthy(10), samples_this_phase=10, final_phase=True)
        assert decision.action == "extend"

    def test_ramp_then_promote(self):
        analyzer = CanaryAnalyzer(GuardrailPolicy(min_samples=50))
        stats = self.healthy(60)
        assert analyzer.decide(stats, 60, final_phase=False).action == "ramp"
        assert analyzer.decide(stats, 60, final_phase=True).action == "promote"

    def test_abort_on_overlap_collapse(self):
        analyzer = CanaryAnalyzer(GuardrailPolicy(min_overlap=0.5, min_abort_samples=10))
        stats = GuardrailStats(
            shadow_compared=20, overlap_sum=2.0, candidate_attempts=20
        )  # overlap 0.1
        decision = analyzer.decide(stats, 20, final_phase=True)
        assert decision.action == "abort"
        assert any("overlap" in reason for reason in decision.reasons)

    def test_abort_on_error_rate(self):
        analyzer = CanaryAnalyzer(GuardrailPolicy(max_error_rate=0.02))
        stats = self.healthy(100)
        stats.candidate_errors = 10
        decision = analyzer.decide(stats, 100, final_phase=True)
        assert decision.action == "abort"
        assert any("error rate" in reason for reason in decision.reasons)

    def test_abort_on_latency_ratio_above_floor(self):
        analyzer = CanaryAnalyzer(
            GuardrailPolicy(max_latency_ratio=3.0, latency_floor_s=0.002)
        )
        stats = self.healthy(100)
        stats.candidate_latency_sum = 0.1  # 100ms vs 1ms primary
        decision = analyzer.decide(stats, 100, final_phase=True)
        assert decision.action == "abort"
        assert any("latency" in reason for reason in decision.reasons)

    def test_latency_ratio_below_floor_is_noise_not_breach(self):
        analyzer = CanaryAnalyzer(
            GuardrailPolicy(max_latency_ratio=3.0, latency_floor_s=0.002)
        )
        stats = self.healthy(100)
        # 10x ratio but both arms in the microsecond regime.
        stats.primary_latency_sum = 1e-5
        stats.candidate_latency_sum = 1e-4
        assert analyzer.decide(stats, 100, final_phase=True).action == "promote"

    def test_abort_needs_min_abort_samples(self):
        analyzer = CanaryAnalyzer(GuardrailPolicy(min_abort_samples=10, min_samples=50))
        stats = GuardrailStats(shadow_compared=5, overlap_sum=0.0, candidate_attempts=5)
        # Catastrophic overlap but only 5 samples: keep collecting.
        assert analyzer.decide(stats, 5, final_phase=True).action == "extend"

    def test_abort_trumps_thin_phase_window(self):
        # Cumulative evidence can abort even right after a ramp reset the
        # per-phase window — a bad candidate cannot hide behind a ramp.
        analyzer = CanaryAnalyzer(GuardrailPolicy(min_abort_samples=10, min_samples=50))
        stats = GuardrailStats(shadow_compared=30, overlap_sum=0.0, candidate_attempts=30)
        assert analyzer.decide(stats, 0, final_phase=False).action == "abort"


class TestValidation:
    def test_rejects_bad_mode_and_fractions(self):
        primary = RecommendationService(make_snapshot(0), default_k=5)
        candidate = make_snapshot(1)
        with pytest.raises(ValueError, match="mode"):
            TrafficSplitter(primary, candidate, salt="s", mode="yolo")
        for fractions in [(), (0.0,), (1.2,), (0.5, 0.5), (0.8, 0.2)]:
            with pytest.raises(ValueError):
                TrafficSplitter(primary, candidate, salt="s", fractions=fractions)
        with pytest.raises(ValueError):
            TrafficSplitter(primary, candidate, salt="s", mirror_queue_size=0)
        with pytest.raises(ValueError):
            TrafficSplitter(primary, candidate, salt="s", overlap_k=0)

    def test_policy_validation(self):
        for kwargs in [
            {"min_samples": 0},
            {"min_overlap": 1.5},
            {"max_error_rate": -0.1},
            {"max_latency_ratio": 0.0},
            {"latency_floor_s": -1.0},
        ]:
            with pytest.raises(ValueError):
                GuardrailPolicy(**kwargs)
