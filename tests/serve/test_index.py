"""IVF approximate index: correctness, recall knob, self-tuning default."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import PAD_INDEX, ExactIndex, IVFIndex, exact_topk


@pytest.fixture()
def clustered_corpus(rng):
    """Items in well-separated direction clusters (IVF-friendly geometry)."""
    centres = rng.normal(size=(6, 12)) * 4.0
    items = np.concatenate([centre + rng.normal(size=(40, 12)) * 0.3 for centre in centres])
    queries = np.concatenate([centre + rng.normal(size=(5, 12)) * 0.3 for centre in centres])
    return queries, items


class TestConstruction:
    def test_default_cell_count_is_sqrt(self, clustered_corpus):
        _, items = clustered_corpus
        index = IVFIndex(items)
        assert index.n_cells == round(np.sqrt(len(items)))

    def test_cells_partition_catalogue(self, clustered_corpus):
        _, items = clustered_corpus
        index = IVFIndex(items, n_cells=9)
        gathered = np.concatenate([index.cell_items(c) for c in range(index.n_cells)])
        np.testing.assert_array_equal(np.sort(gathered), np.arange(len(items)))
        assert index.cell_sizes().sum() == len(items)

    def test_invalid_inputs(self, clustered_corpus):
        _, items = clustered_corpus
        with pytest.raises(ValueError):
            IVFIndex(np.empty((0, 4)))
        with pytest.raises(ValueError):
            IVFIndex(items, n_cells=4, n_probe=9)
        with pytest.raises(ValueError):
            IVFIndex(items, target_recall=0.0)

    def test_deterministic_given_seed(self, clustered_corpus):
        queries, items = clustered_corpus
        a = IVFIndex(items, seed=3, n_probe=2)
        b = IVFIndex(items, seed=3, n_probe=2)
        ai, _ = a.search(queries, 7)
        bi, _ = b.search(queries, 7)
        np.testing.assert_array_equal(ai, bi)


class TestSearch:
    def test_full_probe_equals_exact(self, clustered_corpus):
        queries, items = clustered_corpus
        index = IVFIndex(items, n_cells=8)
        approx_ids, approx_scores = index.search(queries, 11, n_probe=8)
        exact_ids, exact_scores = exact_topk(queries, items, 11)
        # Same item sets and scores (tie order inside equal scores may vary).
        np.testing.assert_array_equal(np.sort(approx_ids), np.sort(exact_ids))
        np.testing.assert_allclose(np.sort(approx_scores), np.sort(exact_scores))

    def test_results_sorted_descending(self, clustered_corpus):
        queries, items = clustered_corpus
        _, scores = IVFIndex(items, n_probe=3).search(queries, 9)
        assert (np.diff(scores, axis=1) <= 1e-12).all()

    def test_high_recall_on_clustered_data(self, clustered_corpus):
        queries, items = clustered_corpus
        index = IVFIndex(items, n_cells=6, n_probe=2, seed=0)
        assert index.measure_recall(queries, 10) > 0.9

    def test_exclusions_respected(self, clustered_corpus):
        queries, items = clustered_corpus
        rng = np.random.default_rng(1)
        per_query = [rng.choice(len(items), size=20, replace=False) for _ in queries]
        indptr = np.concatenate([[0], np.cumsum([len(e) for e in per_query])])
        exclude = (indptr, np.concatenate(per_query))
        index = IVFIndex(items, n_probe=3)
        indices, _ = index.search(queries, 10, exclude=exclude)
        for row, banned in enumerate(per_query):
            returned = indices[row][indices[row] != PAD_INDEX]
            assert not np.isin(returned, banned).any()

    def test_exclusions_with_full_probe_match_exact(self, clustered_corpus):
        queries, items = clustered_corpus
        banned = np.arange(0, 60)
        indptr = np.arange(len(queries) + 1) * len(banned)
        exclude = (indptr, np.tile(banned, len(queries)))
        index = IVFIndex(items, n_cells=7)
        approx_ids, _ = index.search(queries, 9, exclude=exclude, n_probe=7)
        exact_ids, _ = exact_topk(queries, items, 9, exclude=exclude)
        np.testing.assert_array_equal(np.sort(approx_ids), np.sort(exact_ids))

    def test_k_larger_than_probed_candidates_pads(self, clustered_corpus):
        queries, items = clustered_corpus
        index = IVFIndex(items, n_cells=8, n_probe=1)
        indices, scores = index.search(queries[:3], len(items), n_probe=1)
        assert indices.shape == (3, len(items))
        assert (indices == PAD_INDEX).any(axis=1).all()
        assert np.isneginf(scores[indices == PAD_INDEX]).all()

    def test_single_cell_index(self, clustered_corpus):
        queries, items = clustered_corpus
        index = IVFIndex(items, n_cells=1)
        approx_ids, _ = index.search(queries, 5)
        exact_ids, _ = exact_topk(queries, items, 5)
        np.testing.assert_array_equal(np.sort(approx_ids), np.sort(exact_ids))

    def test_invalid_k(self, clustered_corpus):
        queries, items = clustered_corpus
        with pytest.raises(ValueError):
            IVFIndex(items, n_probe=2).search(queries, 0)


class TestRecallKnob:
    def test_recall_monotone_in_probes(self, clustered_corpus):
        queries, items = clustered_corpus
        index = IVFIndex(items, n_cells=8)
        recalls = [index.measure_recall(queries, 10, n_probe=p) for p in (1, 4, 8)]
        assert recalls[0] <= recalls[1] <= recalls[2]
        assert recalls[2] == pytest.approx(1.0)

    def test_tune_reaches_target(self, clustered_corpus):
        queries, items = clustered_corpus
        index = IVFIndex(items, n_cells=8)
        chosen = index.tune_n_probe(queries, 10, target_recall=0.95)
        assert 1 <= chosen <= 8
        assert index.n_probe == chosen
        assert index.measure_recall(queries, 10) >= 0.95

    def test_tune_is_minimal(self, clustered_corpus):
        queries, items = clustered_corpus
        index = IVFIndex(items, n_cells=8)
        chosen = index.tune_n_probe(queries, 10, target_recall=0.95)
        if chosen > 1:
            assert index.measure_recall(queries, 10, n_probe=chosen - 1) < 0.95

    def test_default_self_tunes_on_first_search(self, clustered_corpus):
        queries, items = clustered_corpus
        index = IVFIndex(items, n_cells=8)
        assert index.n_probe is None
        index.search(queries, 10)
        assert index.n_probe is not None
        assert index.measure_recall(queries, 10) >= index.target_recall

    def test_untuned_measure_requires_probe(self, clustered_corpus):
        queries, items = clustered_corpus
        index = IVFIndex(items)
        with pytest.raises(ValueError, match="untuned"):
            index.measure_recall(queries, 5)
