"""Embedding snapshot export, persistence and model-free loading."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.align import AlignedRecommender
from repro.serve import (
    SNAPSHOT_FORMAT_VERSION,
    EmbeddingSnapshot,
    build_snapshot,
    create_snapshot,
    load_snapshot,
    save_snapshot,
)


class TestCreateSnapshot:
    def test_scores_match_score_all(self, lightgcn_backbone):
        snapshot = create_snapshot(lightgcn_backbone)
        reconstructed = snapshot.user_embeddings @ snapshot.item_embeddings.T
        np.testing.assert_allclose(reconstructed, lightgcn_backbone.score_all())

    def test_works_with_aligned_recommender(self, lightgcn_backbone):
        model = AlignedRecommender(lightgcn_backbone, None)
        snapshot = create_snapshot(model)
        np.testing.assert_allclose(
            snapshot.user_embeddings @ snapshot.item_embeddings.T, model.score_all()
        )
        assert snapshot.metadata["model"] == model.name

    def test_metadata_fields(self, lightgcn_backbone, tiny_dataset):
        snapshot = create_snapshot(lightgcn_backbone)
        meta = snapshot.metadata
        assert meta["format_version"] == SNAPSHOT_FORMAT_VERSION
        assert meta["dataset"] == tiny_dataset.name
        assert meta["num_users"] == tiny_dataset.num_users
        assert meta["num_items"] == tiny_dataset.num_items
        assert len(meta["snapshot_id"]) == 16

    def test_snapshot_id_tracks_content(self, tiny_dataset):
        rng = np.random.default_rng(0)
        users = rng.normal(size=(5, 4))
        items = rng.normal(size=(6, 4))
        a = build_snapshot(users, items)
        b = build_snapshot(users, items)
        c = build_snapshot(users + 1e-9, items)
        assert a.snapshot_id == b.snapshot_id
        assert a.snapshot_id != c.snapshot_id

    def test_train_csr_matches_dataset(self, lightgcn_backbone, tiny_dataset):
        snapshot = create_snapshot(lightgcn_backbone)
        for user, items in tiny_dataset.train_positives.items():
            np.testing.assert_array_equal(snapshot.train_items(user), items)

    def test_popularity_counts(self, lightgcn_backbone, tiny_dataset):
        snapshot = create_snapshot(lightgcn_backbone)
        expected = np.bincount(tiny_dataset.train[:, 1], minlength=tiny_dataset.num_items)
        np.testing.assert_array_equal(snapshot.item_popularity, expected)


class TestRoundtrip:
    def test_save_load(self, lightgcn_backbone, tmp_path):
        snapshot = create_snapshot(lightgcn_backbone)
        path = save_snapshot(snapshot, tmp_path / "model.npz")
        loaded = load_snapshot(path)
        np.testing.assert_array_equal(loaded.user_embeddings, snapshot.user_embeddings)
        np.testing.assert_array_equal(loaded.item_embeddings, snapshot.item_embeddings)
        np.testing.assert_array_equal(loaded.train_indptr, snapshot.train_indptr)
        np.testing.assert_array_equal(loaded.train_indices, snapshot.train_indices)
        np.testing.assert_array_equal(loaded.item_popularity, snapshot.item_popularity)
        assert loaded.metadata == snapshot.metadata

    def test_suffix_appended(self, lightgcn_backbone, tmp_path):
        snapshot = create_snapshot(lightgcn_backbone)
        path = save_snapshot(snapshot, tmp_path / "model")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_loading_needs_no_model_code(self, lightgcn_backbone, tmp_path):
        """The archive holds plain arrays + JSON — nothing pickled."""
        path = save_snapshot(create_snapshot(lightgcn_backbone), tmp_path / "m.npz")
        with np.load(path, allow_pickle=False) as archive:
            assert set(archive.files) == {
                "user_embeddings",
                "item_embeddings",
                "train_indptr",
                "train_indices",
                "item_popularity",
                "metadata_json",
            }
            json.loads(str(archive["metadata_json"]))

    def test_unknown_format_version_rejected(self, lightgcn_backbone, tmp_path):
        snapshot = create_snapshot(lightgcn_backbone)
        snapshot.metadata["format_version"] = SNAPSHOT_FORMAT_VERSION + 1
        path = save_snapshot(snapshot, tmp_path / "future.npz")
        with pytest.raises(ValueError, match="format version"):
            load_snapshot(path)

    def test_non_snapshot_npz_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(ValueError, match="not a repro embedding snapshot"):
            load_snapshot(path)


class TestBuildSnapshot:
    def test_without_history(self):
        snapshot = build_snapshot(np.ones((3, 2)), np.ones((4, 2)))
        assert snapshot.num_users == 3
        assert snapshot.num_items == 4
        assert snapshot.train_indices.size == 0
        assert not snapshot.has_history(0)
        np.testing.assert_array_equal(snapshot.item_popularity, np.zeros(4))

    def test_duplicate_pairs_deduplicated_in_csr(self):
        pairs = np.array([[0, 1], [0, 1], [1, 0]])
        snapshot = build_snapshot(np.ones((2, 2)), np.ones((3, 2)), train_pairs=pairs)
        np.testing.assert_array_equal(snapshot.train_items(0), [1])
        np.testing.assert_array_equal(snapshot.train_items(1), [0])
        # popularity keeps raw counts
        np.testing.assert_array_equal(snapshot.item_popularity, [1, 2, 0])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError, match="dimensionality"):
            EmbeddingSnapshot(
                user_embeddings=np.ones((2, 3)),
                item_embeddings=np.ones((2, 4)),
                train_indptr=np.zeros(3, dtype=np.int64),
                train_indices=np.empty(0, dtype=np.int64),
                item_popularity=np.zeros(2),
            )


class TestDeltaSnapshot:
    @pytest.fixture()
    def base(self):
        rng = np.random.default_rng(3)
        return build_snapshot(
            rng.normal(size=(4, 6)),
            rng.normal(size=(9, 6)),
            train_pairs=np.array([[0, 1], [1, 2], [2, 3]]),
            model_name="base",
        )

    def make_delta(self, base, num_users=5, event_range=(0, 3)):
        from repro.serve import build_delta_snapshot

        rng = np.random.default_rng(7)
        return build_delta_snapshot(
            base,
            user_embeddings=rng.normal(size=(num_users, base.dim)),
            train_indptr=np.linspace(0, 3, num_users + 1).astype(np.int64),
            train_indices=base.train_indices,
            item_popularity=base.item_popularity,
            event_range=event_range,
        )

    def test_provenance_fields(self, base):
        delta = self.make_delta(base)
        assert delta.is_delta
        assert not base.is_delta
        assert delta.base_snapshot_id == base.snapshot_id
        assert delta.delta_generation == 1
        assert delta.delta_event_range == (0, 3)
        assert delta.snapshot_id != base.snapshot_id

    def test_item_table_shared_with_base(self, base):
        delta = self.make_delta(base)
        assert delta.item_embeddings is base.item_embeddings

    def test_generation_increments_along_chain(self, base):
        delta1 = self.make_delta(base)
        delta2 = self.make_delta(delta1, event_range=(3, 8))
        assert delta2.delta_generation == 2
        assert delta2.base_snapshot_id == delta1.snapshot_id
        assert delta2.delta_event_range == (3, 8)

    def test_metadata_user_count_updated(self, base):
        delta = self.make_delta(base, num_users=7)
        assert delta.metadata["num_users"] == 7
        assert delta.num_users == 7

    def test_invalid_event_range_rejected(self, base):
        from repro.serve import build_delta_snapshot

        with pytest.raises(ValueError, match="event_range"):
            build_delta_snapshot(
                base,
                user_embeddings=base.user_embeddings,
                train_indptr=base.train_indptr,
                train_indices=base.train_indices,
                item_popularity=base.item_popularity,
                event_range=(5, 2),
            )

    def test_delta_round_trips_through_disk(self, base, tmp_path):
        delta = self.make_delta(base)
        path = save_snapshot(delta, tmp_path / "delta.npz")
        loaded = load_snapshot(path)
        assert loaded.is_delta
        assert loaded.base_snapshot_id == base.snapshot_id
        assert loaded.delta_generation == 1
        assert loaded.delta_event_range == (0, 3)
