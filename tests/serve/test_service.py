"""RecommendationService: batching, caching, cold start, snapshot swap."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve import (
    IVFIndex,
    LRUCache,
    RecommendationService,
    create_snapshot,
)


@pytest.fixture()
def snapshot(lightgcn_backbone):
    return create_snapshot(lightgcn_backbone)


@pytest.fixture()
def service(snapshot):
    return RecommendationService(snapshot, default_k=8)


class TestLRUCache:
    def test_get_put(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.hits == 1
        assert cache.misses == 1

    def test_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" becomes the eviction victim
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_zero_size_disables(self):
        cache = LRUCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None

    def test_eviction_is_strictly_least_recently_used(self):
        # Both get() and put() refresh recency; victims fall in access order.
        cache = LRUCache(maxsize=3)
        for key in "abc":
            cache.put(key, key)
        cache.get("a")          # order: b, c, a
        cache.put("b", "b2")    # put refreshes too -> order: c, a, b
        cache.put("d", "d")     # evicts "c", the true LRU
        assert cache.get("c") is None
        assert cache.get("a") == "a"
        assert cache.get("b") == "b2"
        assert cache.get("d") == "d"

    def test_eviction_chain_under_pressure(self):
        cache = LRUCache(maxsize=2)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 2
        assert cache.get(8) == 8
        assert cache.get(9) == 9
        assert all(cache.get(i) is None for i in range(8))

    def test_clear(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.clear()
        assert cache.get("a") is None


class TestRecommend:
    def test_matches_retriever(self, service, snapshot):
        recommendation = service.recommend(0, k=5)
        indices, _ = service.retriever.topk_for_users([0], 5)
        valid = indices[0][indices[0] != -1]
        np.testing.assert_array_equal(recommendation.items, valid)
        assert recommendation.source == "model"
        assert recommendation.snapshot_id == snapshot.snapshot_id

    def test_never_recommends_seen_items(self, service, snapshot):
        for user in range(snapshot.num_users):
            recommendation = service.recommend(user, k=10)
            if recommendation.source == "model":
                assert not np.isin(recommendation.items, snapshot.train_items(user)).any()

    def test_cache_hit_on_repeat(self, service):
        first = service.recommend(1)
        assert service.cache.hits == 0
        second = service.recommend(1)
        assert service.cache.hits == 1
        assert first is second

    def test_different_k_not_conflated(self, service):
        a = service.recommend(1, k=3)
        b = service.recommend(1, k=5)
        assert len(a) == 3
        assert len(b) == 5

    def test_many_matches_single(self, snapshot):
        batched = RecommendationService(snapshot, default_k=6, cache_size=0)
        single = RecommendationService(snapshot, default_k=6, cache_size=0)
        users = [3, 1, 4, 1, 5]
        many = batched.recommend_many(users)
        assert [r.user_id for r in many] == users
        for user, recommendation in zip(users, many):
            np.testing.assert_array_equal(recommendation.items, single.recommend(user).items)
        # 5 requested positions, 4 distinct users, exactly one retrieval batch
        assert batched.stats.batches == 1
        assert batched.stats.batched_queries == 4

    def test_invalid_k(self, service):
        with pytest.raises(ValueError):
            service.recommend(0, k=0)


class TestColdStart:
    def test_unknown_user_gets_popularity(self, service, snapshot):
        recommendation = service.recommend(snapshot.num_users + 42, k=6)
        assert recommendation.source == "popularity"
        expected = np.argsort(-snapshot.item_popularity.astype(float), kind="stable")[:6]
        np.testing.assert_array_equal(recommendation.items, expected)
        assert service.stats.fallbacks == 1

    def test_negative_user_gets_popularity(self, service):
        assert service.recommend(-3).source == "popularity"

    def test_fallback_masks_known_users_history(self, snapshot):
        # A known-but-cold user must not be recommended their own training
        # items even on the popularity path.
        service = RecommendationService(
            snapshot, default_k=10, cold_start_min_history=10_000
        )
        for user in range(snapshot.num_users):
            recommendation = service.recommend(user)
            assert recommendation.source == "popularity"
            assert not np.isin(recommendation.items, snapshot.train_items(user)).any()
        # Unknown users get the unfiltered ranking.
        unfiltered = service.recommend(snapshot.num_users + 1)
        expected = np.argsort(-snapshot.item_popularity.astype(float), kind="stable")[:10]
        np.testing.assert_array_equal(unfiltered.items, expected)

    def test_fallback_threshold_configurable(self, snapshot):
        service = RecommendationService(
            snapshot, default_k=5, cold_start_min_history=10_000
        )
        # Every user has fewer than 10k training items -> all fall back.
        assert service.recommend(0).source == "popularity"
        strict = RecommendationService(snapshot, default_k=5, cold_start_min_history=0)
        assert strict.recommend(0).source == "model"


class TestMicroBatching:
    def test_submit_flush_matches_direct(self, snapshot):
        service = RecommendationService(snapshot, default_k=7, cache_size=0)
        reference = RecommendationService(snapshot, default_k=7, cache_size=0)
        tickets = [service.submit(user) for user in (0, 2, 4)]
        assert service.pending_count == 3
        assert not tickets[0].ready
        served = service.flush()
        assert served == 3
        assert service.pending_count == 0
        for user, ticket in zip((0, 2, 4), tickets):
            np.testing.assert_array_equal(
                ticket.result().items, reference.recommend(user).items
            )

    def test_auto_flush_when_buffer_full(self, snapshot):
        service = RecommendationService(snapshot, batch_size=2)
        first = service.submit(0)
        assert not first.ready
        second = service.submit(1)
        assert first.ready
        assert second.ready

    def test_result_forces_flush(self, snapshot):
        service = RecommendationService(snapshot)
        ticket = service.submit(3)
        recommendation = ticket.result()  # no explicit flush needed
        assert recommendation.user_id == 3

    def test_mixed_k_batches(self, snapshot):
        service = RecommendationService(snapshot, cache_size=0)
        small = service.submit(0, k=3)
        large = service.submit(0, k=9)
        service.flush()
        assert len(small.result()) == 3
        assert len(large.result()) == 9

    def test_submit_rejects_bad_k_up_front(self, snapshot):
        # A poisoned entry in the buffer must never strand other tickets.
        service = RecommendationService(snapshot)
        good = service.submit(1, k=5)
        with pytest.raises(ValueError):
            service.submit(2, k=0)
        assert service.flush() == 1
        assert good.result().user_id == 1

    def test_flush_requeues_tickets_on_group_failure(self, snapshot, monkeypatch):
        service = RecommendationService(snapshot)
        ticket = service.submit(1, k=5)

        def boom(users, k=None):
            raise RuntimeError("index exploded")

        monkeypatch.setattr(service, "recommend_many", boom)
        with pytest.raises(RuntimeError, match="index exploded"):
            service.flush()
        # The unserved ticket is back in the buffer, not silently lost.
        assert service.pending_count == 1
        monkeypatch.undo()
        service.flush()
        assert ticket.result().user_id == 1

    def test_concurrent_submitters(self, snapshot):
        service = RecommendationService(snapshot, batch_size=4, default_k=5)
        results: dict[int, object] = {}

        def worker(user):
            results[user] = service.submit(user).result()

        threads = [threading.Thread(target=worker, args=(user,)) for user in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 12
        reference = RecommendationService(snapshot, default_k=5)
        for user, recommendation in results.items():
            np.testing.assert_array_equal(
                recommendation.items, reference.recommend(user).items
            )


class TestSnapshotSwap:
    def test_swap_invalidates_cache(self, lightgcn_backbone, snapshot):
        service = RecommendationService(snapshot, default_k=6)
        before = service.recommend(0)
        assert len(service.cache) == 1

        # Perturb the embeddings -> a genuinely different snapshot.
        shifted = create_snapshot(lightgcn_backbone)
        shifted.user_embeddings = shifted.user_embeddings[::-1].copy()
        shifted.metadata["snapshot_id"] = "f" * 16
        service.swap_snapshot(shifted)

        assert len(service.cache) == 0
        after = service.recommend(0)
        assert after.snapshot_id != before.snapshot_id
        assert service.stats.snapshot_swaps == 1

    def test_swap_rebuilds_index_via_factory(self, snapshot):
        built = []

        def factory(items):
            index = IVFIndex(items, n_probe=2)
            built.append(index)
            return index

        service = RecommendationService(snapshot, index_factory=factory)
        assert len(built) == 1
        service.swap_snapshot(snapshot)
        assert len(built) == 2
        assert service.index is built[-1]

    def test_index_and_factory_mutually_exclusive(self, snapshot):
        with pytest.raises(ValueError):
            RecommendationService(
                snapshot,
                index=IVFIndex(snapshot.item_embeddings, n_probe=1),
                index_factory=lambda items: IVFIndex(items, n_probe=1),
            )

    def test_pending_queries_flushed_before_swap(self, snapshot):
        service = RecommendationService(snapshot, default_k=4)
        ticket = service.submit(2)
        old_id = snapshot.snapshot_id
        shifted = create_snapshot_variant(snapshot)
        service.swap_snapshot(shifted)
        assert ticket.ready
        assert ticket.result().snapshot_id == old_id


class TestSwapRaces:
    def test_submit_racing_swap_never_mixes_versions(self, snapshot):
        """Concurrent submits while snapshots swap: every served result must
        belong to exactly one snapshot version, never a mix."""
        service = RecommendationService(snapshot, default_k=5, cache_size=0, batch_size=4)
        variants = [snapshot] + [
            create_snapshot_variant(snapshot, shift=float(i)) for i in (1, 2, 3)
        ]
        known_ids = {v.snapshot_id for v in variants}
        per_version_items = {
            v.snapshot_id: {
                user: RecommendationService(v, default_k=5, cache_size=0).recommend(user).items.tolist()
                for user in range(8)
            }
            for v in variants
        }
        results = []
        results_lock = threading.Lock()
        stop = threading.Event()

        def submitter():
            user = 0
            while not stop.is_set():
                ticket = service.submit(user % 8)
                recommendation = ticket.result()
                with results_lock:
                    results.append(recommendation)
                user += 1

        threads = [threading.Thread(target=submitter) for _ in range(3)]
        for thread in threads:
            thread.start()
        for _ in range(3):
            for variant in variants[1:] + [variants[0]]:
                service.swap_snapshot(variant)
        stop.set()
        for thread in threads:
            thread.join()
        service.flush()

        assert len(results) > 0
        for recommendation in results:
            # The advertised version is a real one...
            assert recommendation.snapshot_id in known_ids
            # ...and the items are exactly what that version would serve: the
            # ranking was not computed against a different snapshot mid-swap.
            expected = per_version_items[recommendation.snapshot_id][recommendation.user_id]
            assert recommendation.items.tolist() == expected

    def test_pending_tickets_served_from_pre_swap_snapshot(self, snapshot):
        service = RecommendationService(snapshot, default_k=4, batch_size=64)
        tickets = [service.submit(user) for user in range(6)]
        service.swap_snapshot(create_snapshot_variant(snapshot))
        # The swap flushed the buffer against the old snapshot first.
        assert all(ticket.ready for ticket in tickets)
        assert {t.result().snapshot_id for t in tickets} == {snapshot.snapshot_id}
        # New queries see the new snapshot.
        assert service.recommend(0).snapshot_id != snapshot.snapshot_id


class TestPopularityProvider:
    def test_defaults_to_snapshot_counts(self, service, snapshot):
        np.testing.assert_array_equal(service.popularity(), snapshot.item_popularity)

    def test_provider_overrides_fallback_ranking(self, snapshot):
        service = RecommendationService(snapshot, default_k=3)
        boosted = np.zeros(snapshot.num_items, dtype=np.int64)
        boosted[5] = 1000
        boosted[2] = 500
        service.set_popularity_provider(lambda: boosted)
        recommendation = service.recommend(snapshot.num_users + 1, k=2)
        assert recommendation.source == "popularity"
        np.testing.assert_array_equal(recommendation.items, [5, 2])
        np.testing.assert_array_equal(recommendation.scores, [1000.0, 500.0])

    def test_provider_reset_restores_snapshot(self, snapshot):
        service = RecommendationService(snapshot, default_k=3)
        service.set_popularity_provider(lambda: np.arange(snapshot.num_items))
        service.set_popularity_provider(None)
        np.testing.assert_array_equal(service.popularity(), snapshot.item_popularity)

    def test_provider_shape_validated(self, snapshot):
        service = RecommendationService(snapshot)
        service.set_popularity_provider(lambda: np.ones(3))
        with pytest.raises(ValueError, match="popularity provider"):
            service.recommend(snapshot.num_users + 1)

    def test_provider_masks_known_user_history(self, snapshot):
        service = RecommendationService(
            snapshot, default_k=10, cold_start_min_history=10_000
        )
        service.set_popularity_provider(
            lambda: np.arange(snapshot.num_items, 0, -1, dtype=np.int64)
        )
        for user in range(snapshot.num_users):
            recommendation = service.recommend(user)
            assert recommendation.source == "popularity"
            assert not np.isin(recommendation.items, snapshot.train_items(user)).any()


class TestRecordInteraction:
    def test_requires_attached_log(self, service):
        with pytest.raises(RuntimeError, match="no event log"):
            service.record_interaction(0, 1)

    def test_appends_and_counts(self, snapshot):
        from repro.stream import EventLog

        log = EventLog()
        service = RecommendationService(snapshot, event_log=log)
        event = service.record_interaction(snapshot.num_users + 7, 3, weight=2.0)
        assert event.seq == 0
        assert event.user_id == snapshot.num_users + 7
        assert len(log) == 1
        assert service.stats.interactions_recorded == 1
        assert service.stats.as_dict()["interactions_recorded"] == 1

    def test_attach_after_construction(self, service):
        from repro.stream import EventLog

        log = EventLog()
        service.attach_event_log(log)
        service.record_interaction(0, 1)
        assert len(log) == 1

    def test_rejects_unknown_item(self, snapshot):
        from repro.stream import EventLog

        service = RecommendationService(snapshot, event_log=EventLog())
        with pytest.raises(ValueError, match="frozen catalogue"):
            service.record_interaction(0, snapshot.num_items)

    def test_rejects_negative_user(self, snapshot):
        from repro.stream import EventLog

        service = RecommendationService(snapshot, event_log=EventLog())
        with pytest.raises(ValueError):
            service.record_interaction(-1, 0)


def create_snapshot_variant(snapshot, shift: float = 1.0):
    """A copy of ``snapshot`` with a different id (simulates a retrain)."""
    from repro.serve import build_snapshot

    variant = build_snapshot(
        snapshot.user_embeddings + shift,
        snapshot.item_embeddings,
        model_name="variant",
    )
    return variant


class TestGracefulDegradation:
    """Retrieval failures open the breaker; queries degrade, never error."""

    def _break_retriever(self, service):
        def broken(*args, **kwargs):
            raise RuntimeError("index corrupted")

        service.retriever.topk_for_users = broken

    def test_retrieval_failure_served_from_popularity(self, snapshot):
        service = RecommendationService(snapshot)
        self._break_retriever(service)
        recommendation = service.recommend(0, k=4)
        assert recommendation.source == "popularity"
        assert len(recommendation.items) == 4
        assert service.stats.retrieval_errors == 1
        assert service.stats.degraded_queries == 1

    def test_breaker_opens_and_stops_touching_the_index(self, snapshot):
        service = RecommendationService(snapshot)
        self._break_retriever(service)
        for user in range(10):
            assert service.recommend(user, k=3).source == "popularity"
        assert service.breaker.open_count >= 1
        # Once open, queries degrade without even calling the retriever.
        assert service.stats.retrieval_errors < 10
        assert service.stats.degraded_queries == 10

    def test_degraded_results_are_not_cached(self, snapshot):
        service = RecommendationService(snapshot)
        original = service.retriever.topk_for_users
        self._break_retriever(service)
        assert service.recommend(1, k=4).source == "popularity"
        # Recovery: restore the retriever and close the breaker — the same
        # query immediately serves model results again (no stale cache).
        service.retriever.topk_for_users = original
        service.breaker.reset()
        assert service.recommend(1, k=4).source == "model"

    def test_swap_resets_breaker_state(self, snapshot):
        service = RecommendationService(snapshot)
        service.breaker.trip()
        assert not service.breaker.allow()
        service.swap_snapshot(snapshot)
        assert service.breaker.allow()

    def test_stats_expose_degradation_counters(self, snapshot):
        service = RecommendationService(snapshot)
        stats = service.stats.as_dict()
        assert stats["degraded_queries"] == 0
        assert stats["retrieval_errors"] == 0


class TestAdmissionControl:
    """Deadline budgets shed the index search, never the user's answer."""

    def test_blown_budget_sheds_to_popularity(self, snapshot):
        # A budget no real request can meet: every warm query is shed.
        service = RecommendationService(snapshot, deadline_budget_s=1e-9)
        recommendation = service.recommend(0, k=4)
        assert recommendation.source == "popularity"
        assert len(recommendation.items) == 4
        assert service.stats.deadline_shed == 1
        # Shedding is admission control, not a failure mode.
        assert service.stats.degraded_queries == 0
        assert service.stats.retrieval_errors == 0

    def test_per_call_deadline_overrides_service_default(self, snapshot):
        service = RecommendationService(snapshot)
        shed = service.recommend_many([0, 1], k=4, deadline_s=1e-9)
        assert all(rec.source == "popularity" for rec in shed)
        assert service.stats.deadline_shed == 2
        # A generous per-call deadline serves the model as usual.
        served = service.recommend_many([0, 1], k=4, deadline_s=30.0)
        assert all(rec.source == "model" for rec in served)

    def test_shed_answers_are_not_cached(self, snapshot):
        service = RecommendationService(snapshot)
        assert service.recommend_many([0], k=4, deadline_s=1e-9)[0].source == "popularity"
        # The next unconstrained query gets real results, not a stale shed.
        assert service.recommend(0, k=4).source == "model"

    def test_generous_budget_never_sheds(self, snapshot):
        service = RecommendationService(snapshot, deadline_budget_s=30.0)
        assert service.recommend(0, k=4).source == "model"
        assert service.stats.deadline_shed == 0

    def test_shed_appears_in_stats_dict(self, snapshot):
        service = RecommendationService(snapshot, deadline_budget_s=1e-9)
        service.recommend(0, k=4)
        assert service.stats.as_dict()["deadline_shed"] == 1

    @pytest.mark.parametrize("budget", [0.0, -1.0])
    def test_rejects_non_positive_budgets(self, snapshot, budget):
        with pytest.raises(ValueError):
            RecommendationService(snapshot, deadline_budget_s=budget)
        service = RecommendationService(snapshot)
        with pytest.raises(ValueError):
            service.recommend_many([0], deadline_s=budget)


class TestPopularityRecommendation:
    def test_serves_popularity_directly(self, snapshot):
        service = RecommendationService(snapshot, default_k=8)
        recommendation = service.popularity_recommendation(3)
        assert recommendation.source == "popularity"
        assert recommendation.user_id == 3
        assert len(recommendation.items) == 8
        assert service.stats.queries == 1

    def test_explicit_k_and_validation(self, snapshot):
        service = RecommendationService(snapshot)
        assert len(service.popularity_recommendation(0, k=3).items) == 3
        with pytest.raises(ValueError):
            service.popularity_recommendation(0, k=0)

    def test_works_while_breaker_is_open(self, snapshot):
        # The canary splitter leans on this as its never-fail degraded path.
        service = RecommendationService(snapshot)
        service.breaker.trip()
        assert service.popularity_recommendation(1, k=4).source == "popularity"


class TestCacheMetricsAcrossSwaps:
    """Hit/miss accounting survives snapshot swaps without mixing versions.

    The cache counters are *labeled by snapshot id*: each snapshot version
    owns its own hit/miss series, so a swap starts fresh series instead of
    resetting (and losing) the old version's numbers.
    """

    @staticmethod
    def _variant_with_history(snapshot):
        """A retrained-looking snapshot that keeps every user's train history
        (so warm users stay warm — and cacheable — after the swap)."""
        from repro.serve import build_snapshot

        pairs = np.column_stack(
            [
                np.repeat(
                    np.arange(snapshot.num_users), np.diff(snapshot.train_indptr)
                ),
                snapshot.train_indices,
            ]
        )
        return build_snapshot(
            snapshot.user_embeddings + 0.5,
            snapshot.item_embeddings,
            train_pairs=pairs,
            model_name="variant",
        )

    def test_per_snapshot_series_and_swap_behaviour(self, snapshot):
        from repro.obs.metrics import use_registry

        with use_registry() as registry:
            service = RecommendationService(snapshot, default_k=5, cache_size=64)
            old = {"snapshot": snapshot.snapshot_id}
            service.recommend(0, k=5)  # miss, fills cache
            service.recommend(0, k=5)  # hit
            assert registry.value("serve.cache.misses.total", labels=old) == 1
            assert registry.value("serve.cache.hits.total", labels=old) == 1

            variant = self._variant_with_history(snapshot)
            service.swap_snapshot(variant)
            new = {"snapshot": variant.snapshot_id}
            service.recommend(0, k=5)  # swap cleared the cache: miss on NEW series
            service.recommend(0, k=5)  # hit on the new series
            assert registry.value("serve.cache.misses.total", labels=new) == 1
            assert registry.value("serve.cache.hits.total", labels=new) == 1
            # The old version's history is preserved, not reset or re-used.
            assert registry.value("serve.cache.misses.total", labels=old) == 1
            assert registry.value("serve.cache.hits.total", labels=old) == 1
            assert registry.value("serve.snapshot.swaps.total") == 1

    def test_swap_back_resumes_the_original_series(self, snapshot):
        from repro.obs.metrics import use_registry

        with use_registry() as registry:
            service = RecommendationService(snapshot, default_k=5, cache_size=64)
            variant = self._variant_with_history(snapshot)
            labels = {"snapshot": snapshot.snapshot_id}
            service.recommend(0, k=5)
            service.swap_snapshot(variant)
            service.recommend(0, k=5)
            service.swap_snapshot(snapshot)  # roll back to the original
            service.recommend(0, k=5)
            # Counters for the original id accumulated across both tenures:
            # get-or-create returned the same series after the rollback swap.
            assert registry.value("serve.cache.misses.total", labels=labels) == 2
            assert registry.value("serve.snapshot.swaps.total") == 2
