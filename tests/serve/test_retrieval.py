"""Exact blockwise retrieval and the Retriever facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import (
    PAD_INDEX,
    ExactIndex,
    Retriever,
    create_snapshot,
    exact_topk,
    gather_csr_rows,
)


@pytest.fixture()
def corpus(rng):
    items = rng.normal(size=(120, 8))
    queries = rng.normal(size=(17, 8))
    return queries, items


def brute_force(queries, items, k):
    scores = queries @ items.T
    order = np.argsort(-scores, axis=1)[:, :k]
    return order, np.take_along_axis(scores, order, axis=1)


class TestExactTopk:
    def test_matches_brute_force(self, corpus):
        queries, items = corpus
        indices, scores = exact_topk(queries, items, 10)
        ref_indices, ref_scores = brute_force(queries, items, 10)
        np.testing.assert_array_equal(indices, ref_indices)
        np.testing.assert_allclose(scores, ref_scores)

    def test_blockwise_equals_single_block(self, corpus):
        queries, items = corpus
        full_indices, full_scores = exact_topk(queries, items, 9, block_size=4096)
        for block_size in (7, 16, 50, 119):
            indices, scores = exact_topk(queries, items, 9, block_size=block_size)
            np.testing.assert_array_equal(indices, full_indices)
            np.testing.assert_allclose(scores, full_scores)

    def test_single_query_vector_promoted(self, corpus):
        queries, items = corpus
        indices, scores = exact_topk(queries[0], items, 5)
        assert indices.shape == (1, 5)

    def test_k_larger_than_catalogue_pads(self, corpus):
        queries, items = corpus
        indices, scores = exact_topk(queries, items[:4], 6)
        assert indices.shape == (17, 6)
        assert (indices[:, 4:] == PAD_INDEX).all()
        assert np.isneginf(scores[:, 4:]).all()
        assert (indices[:, :4] != PAD_INDEX).all()

    def test_exclusions_never_returned(self, corpus):
        queries, items = corpus
        rng = np.random.default_rng(7)
        per_query = [rng.choice(len(items), size=15, replace=False) for _ in queries]
        indptr = np.concatenate([[0], np.cumsum([len(e) for e in per_query])])
        exclude = (indptr, np.concatenate(per_query))
        for block_size in (4096, 13):
            indices, _ = exact_topk(queries, items, 10, exclude=exclude, block_size=block_size)
            for row, banned in enumerate(per_query):
                returned = indices[row][indices[row] != PAD_INDEX]
                assert not np.isin(returned, banned).any()

    def test_exclusion_equals_score_masking(self, corpus):
        queries, items = corpus
        banned = np.arange(0, 30)
        indptr = np.arange(len(queries) + 1) * len(banned)
        exclude = (indptr, np.tile(banned, len(queries)))
        indices, _ = exact_topk(queries, items, 8, exclude=exclude)
        masked = queries @ items.T
        masked[:, banned] = -np.inf
        ref = np.argsort(-masked, axis=1)[:, :8]
        np.testing.assert_array_equal(indices, ref)

    def test_invalid_arguments(self, corpus):
        queries, items = corpus
        with pytest.raises(ValueError):
            exact_topk(queries, items, 0)
        with pytest.raises(ValueError):
            exact_topk(queries, items, 5, block_size=0)


class TestGatherCsrRows:
    def test_selected_rows(self):
        indptr = np.array([0, 2, 2, 5])
        indices = np.array([4, 9, 1, 2, 3])
        batch_indptr, batch_indices = gather_csr_rows(indptr, indices, np.array([2, 0, 1]))
        np.testing.assert_array_equal(batch_indptr, [0, 3, 5, 5])
        np.testing.assert_array_equal(batch_indices, [1, 2, 3, 4, 9])

    def test_all_empty_rows(self):
        indptr = np.array([0, 0, 0])
        batch_indptr, batch_indices = gather_csr_rows(indptr, np.empty(0, dtype=np.int64), np.array([0, 1]))
        np.testing.assert_array_equal(batch_indptr, [0, 0, 0])
        assert batch_indices.size == 0


class TestRetriever:
    def test_masks_training_items(self, lightgcn_backbone, tiny_dataset):
        snapshot = create_snapshot(lightgcn_backbone)
        retriever = Retriever(snapshot)
        users = np.arange(tiny_dataset.num_users)
        indices, _ = retriever.topk_for_users(users, 10)
        for user in users:
            returned = indices[user][indices[user] != PAD_INDEX]
            assert not np.isin(returned, snapshot.train_items(user)).any()

    def test_masking_can_be_disabled(self, lightgcn_backbone):
        snapshot = create_snapshot(lightgcn_backbone)
        scores = snapshot.user_embeddings @ snapshot.item_embeddings.T
        retriever = Retriever(snapshot, mask_train=False)
        indices, _ = retriever.topk_for_users([0], 5)
        ref = np.argsort(-scores[0])[:5]
        np.testing.assert_array_equal(indices[0], ref)

    def test_accepts_scalar_user(self, lightgcn_backbone):
        snapshot = create_snapshot(lightgcn_backbone)
        indices, scores = Retriever(snapshot).topk_for_users(3, 5)
        assert indices.shape == (1, 5)

    def test_out_of_range_user_rejected(self, lightgcn_backbone):
        snapshot = create_snapshot(lightgcn_backbone)
        with pytest.raises(IndexError):
            Retriever(snapshot).topk_for_users([snapshot.num_users], 5)

    def test_custom_index_is_used(self, lightgcn_backbone):
        snapshot = create_snapshot(lightgcn_backbone)

        class Recording(ExactIndex):
            calls = 0

            def search(self, queries, k, exclude=None):
                Recording.calls += 1
                return super().search(queries, k, exclude=exclude)

        retriever = Retriever(snapshot, index=Recording(snapshot.item_embeddings))
        retriever.topk_for_users([0, 1], 5)
        assert Recording.calls == 1
