"""Tape mechanics: accumulation, reuse, no_grad, detach, error handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, is_grad_enabled, no_grad
from repro.nn.tensor import _unbroadcast


class TestBackwardMechanics:
    def test_backward_requires_scalar_without_gradient(self):
        tensor = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (tensor * 2.0).backward()

    def test_backward_with_explicit_gradient(self):
        tensor = Tensor(np.ones((2, 2)), requires_grad=True)
        out = tensor * 3.0
        out.backward(np.full((2, 2), 2.0))
        np.testing.assert_allclose(tensor.grad, np.full((2, 2), 6.0))

    def test_gradients_accumulate_across_backward_calls(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        (tensor * 2.0).sum().backward()
        (tensor * 2.0).sum().backward()
        np.testing.assert_allclose(tensor.grad, np.full(3, 4.0))

    def test_zero_grad_clears_gradient(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        (tensor * 2.0).sum().backward()
        tensor.zero_grad()
        assert tensor.grad is None

    def test_reused_tensor_accumulates_through_both_paths(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        out = (tensor * 2.0).sum() + (tensor * 3.0).sum()
        out.backward()
        np.testing.assert_allclose(tensor.grad, np.full(3, 5.0))

    def test_diamond_graph(self):
        tensor = Tensor(np.array([2.0]), requires_grad=True)
        a = tensor * 3.0
        b = tensor * 4.0
        (a * b).sum().backward()
        # d/dx (3x * 4x) = 24x = 48
        np.testing.assert_allclose(tensor.grad, [48.0])

    def test_deep_chain_survives_without_recursion_error(self):
        tensor = Tensor(np.array([1.0]), requires_grad=True)
        value = tensor
        for _ in range(2000):
            value = value + 1.0
        value.sum().backward()
        np.testing.assert_allclose(tensor.grad, [1.0])

    def test_constant_parents_receive_no_gradient(self):
        constant = Tensor(np.ones(3))
        variable = Tensor(np.ones(3), requires_grad=True)
        (constant * variable).sum().backward()
        assert constant.grad is None
        np.testing.assert_allclose(variable.grad, np.ones(3))


class TestGradMode:
    def test_no_grad_disables_tape(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = tensor * 2.0
        assert not out.requires_grad
        assert out._parents == ()

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_nested(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_tensor_created_inside_no_grad_never_requires_grad(self):
        with no_grad():
            tensor = Tensor(np.ones(3), requires_grad=True)
        assert not tensor.requires_grad

    def test_detach_cuts_graph(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        detached = (tensor * 2.0).detach()
        assert not detached.requires_grad
        loss = (detached * 3.0).sum()
        loss.backward()
        assert tensor.grad is None


class TestHelpers:
    def test_as_tensor_passthrough(self):
        tensor = Tensor(np.ones(2))
        assert as_tensor(tensor) is tensor

    def test_as_tensor_from_list(self):
        tensor = as_tensor([1.0, 2.0])
        np.testing.assert_allclose(tensor.data, [1.0, 2.0])

    def test_copy_is_independent(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        duplicate = tensor.copy()
        duplicate.data[0] = 99.0
        assert tensor.data[0] == 1.0
        assert duplicate.requires_grad

    def test_numpy_returns_underlying_array(self):
        array = np.ones(3)
        assert Tensor(array).numpy() is not None

    def test_shape_ndim_size(self):
        tensor = Tensor(np.zeros((3, 4)))
        assert tensor.shape == (3, 4)
        assert tensor.ndim == 2
        assert tensor.size == 12


class TestBroadcastUnbroadcast:
    def test_row_vector_bias_gradient(self):
        bias = Tensor(np.zeros((1, 3)), requires_grad=True)
        data = Tensor(np.ones((5, 3)))
        (data + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, np.full((1, 3), 5.0))

    def test_vector_bias_gradient(self):
        bias = Tensor(np.zeros(3), requires_grad=True)
        data = Tensor(np.ones((5, 3)))
        (data + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, np.full(3, 5.0))

    def test_scalar_tensor_gradient(self):
        scalar = Tensor(np.array(2.0), requires_grad=True)
        data = Tensor(np.ones((4, 2)))
        (data * scalar).sum().backward()
        np.testing.assert_allclose(scalar.grad, 8.0)

    def test_column_vector_gradient(self):
        column = Tensor(np.ones((4, 1)), requires_grad=True)
        data = Tensor(np.full((4, 3), 2.0))
        (data * column).sum().backward()
        np.testing.assert_allclose(column.grad, np.full((4, 1), 6.0))


class TestNoGradDecorator:
    def test_decorator_disables_recording(self):
        @no_grad()
        def double(tensor):
            assert not is_grad_enabled()
            return tensor * 2.0

        tensor = Tensor(np.ones(3), requires_grad=True)
        out = double(tensor)
        assert is_grad_enabled()  # restored after the call
        assert not out.requires_grad

    def test_decorator_restores_flag_on_exception(self):
        @no_grad()
        def explode():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            explode()
        assert is_grad_enabled()

    def test_decorator_preserves_metadata_and_passthrough(self):
        @no_grad()
        def documented(a, b=2.0):
            """docstring survives wrapping"""
            return a + b

        assert documented.__name__ == "documented"
        assert "survives" in documented.__doc__
        assert documented(1.0) == 3.0

    def test_nested_decorator_inside_context_manager(self):
        @no_grad()
        def inner():
            return is_grad_enabled()

        with no_grad():
            assert inner() is False
            assert not is_grad_enabled()  # outer context still active
        assert is_grad_enabled()


class TestUnbroadcastEdgeCases:
    """Direct unit coverage of the broadcasting adjoint."""

    def test_identity_when_shapes_match(self):
        grad = np.arange(6.0).reshape(2, 3)
        out = _unbroadcast(grad, (2, 3))
        assert out is grad  # no copy on the fast path

    def test_prepended_axes_summed(self):
        grad = np.ones((4, 2, 3))
        np.testing.assert_array_equal(_unbroadcast(grad, (2, 3)), np.full((2, 3), 4.0))

    def test_stretched_axis_summed_with_keepdims(self):
        grad = np.ones((2, 5))
        np.testing.assert_array_equal(_unbroadcast(grad, (2, 1)), np.full((2, 1), 5.0))

    def test_prepended_and_stretched_axes_combined(self):
        # (1, 3) broadcast against (4, 2, 3) -> grad (4, 2, 3); the adjoint
        # sums the prepended leading axis AND the stretched row axis.
        grad = np.ones((4, 2, 3))
        np.testing.assert_array_equal(_unbroadcast(grad, (1, 3)), np.full((1, 3), 8.0))

    def test_column_and_row_stretch_combined(self):
        grad = np.arange(24.0).reshape(2, 3, 4)
        out = _unbroadcast(grad, (2, 1, 1))
        np.testing.assert_array_equal(out, grad.sum(axis=(1, 2), keepdims=True))

    def test_zero_d_grad_target(self):
        grad = np.ones((4, 2))
        out = _unbroadcast(grad, ())
        assert out.shape == ()
        assert out == 8.0

    def test_zero_d_grad_passthrough(self):
        grad = np.array(3.5)
        out = _unbroadcast(grad, ())
        assert out is grad

    def test_scalar_grad_into_length_one_vector(self):
        grad = np.ones((7, 1))
        np.testing.assert_array_equal(_unbroadcast(grad, (1,)), np.array([7.0]))
