"""Sparse-dense propagation: forward values and adjoint correctness."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import Tensor, sparse_dense_matmul


def random_sparse(rows: int, cols: int, density: float = 0.3, seed: int = 0) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    mask = rng.random((rows, cols)) < density
    values = rng.normal(size=(rows, cols)) * mask
    return sp.csr_matrix(values)


class TestSparseDenseMatmul:
    def test_forward_matches_dense(self):
        matrix = random_sparse(6, 5)
        dense = Tensor(np.random.default_rng(1).normal(size=(5, 3)))
        out = sparse_dense_matmul(matrix, dense)
        np.testing.assert_allclose(out.data, matrix.toarray() @ dense.data, atol=1e-12)

    def test_backward_matches_dense_adjoint(self):
        matrix = random_sparse(6, 5, seed=2)
        value = np.random.default_rng(3).normal(size=(5, 3))
        dense = Tensor(value, requires_grad=True)
        upstream = np.random.default_rng(4).normal(size=(6, 3))
        out = sparse_dense_matmul(matrix, dense)
        (out * Tensor(upstream)).sum().backward()
        np.testing.assert_allclose(dense.grad, matrix.toarray().T @ upstream, atol=1e-12)

    def test_dimension_mismatch_rejected(self):
        matrix = random_sparse(4, 4)
        with pytest.raises(ValueError):
            sparse_dense_matmul(matrix, Tensor(np.zeros((5, 2))))

    def test_accepts_coo_input(self):
        matrix = random_sparse(3, 3).tocoo()
        out = sparse_dense_matmul(matrix, Tensor(np.eye(3)))
        np.testing.assert_allclose(out.data, matrix.toarray(), atol=1e-12)

    def test_no_gradient_recorded_for_constant_input(self):
        matrix = random_sparse(3, 3)
        dense = Tensor(np.ones((3, 2)))
        out = sparse_dense_matmul(matrix, dense)
        assert not out.requires_grad

    def test_chained_propagation_gradient(self):
        """Two propagation steps mimic a 2-layer LightGCN forward pass."""
        matrix = random_sparse(4, 4, density=0.6, seed=5)
        dense = Tensor(np.random.default_rng(6).normal(size=(4, 2)), requires_grad=True)
        hidden = sparse_dense_matmul(matrix, dense)
        out = sparse_dense_matmul(matrix, hidden)
        out.sum().backward()
        expected = (matrix.toarray().T @ matrix.toarray().T) @ np.ones((4, 2))
        np.testing.assert_allclose(dense.grad, expected, atol=1e-10)
