"""Behavioural tests for the functional building blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, functional as F


class TestActivations:
    def test_softmax_rows_sum_to_one(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(5, 7)))
        probs = F.softmax(logits).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), atol=1e-12)
        assert (probs >= 0).all()

    def test_softmax_is_shift_invariant(self):
        logits = np.random.default_rng(1).normal(size=(3, 4))
        a = F.softmax(Tensor(logits)).data
        b = F.softmax(Tensor(logits + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_log_softmax_matches_log_of_softmax(self):
        logits = Tensor(np.random.default_rng(2).normal(size=(4, 6)))
        np.testing.assert_allclose(
            F.log_softmax(logits).data, np.log(F.softmax(logits).data), atol=1e-8
        )

    def test_softplus_positive_and_close_to_relu_for_large_inputs(self):
        values = Tensor(np.array([-50.0, -1.0, 0.0, 1.0, 50.0]))
        out = F.softplus(values).data
        assert (out > 0).all()
        assert out[-1] == pytest.approx(50.0, abs=1e-6)
        assert out[0] == pytest.approx(0.0, abs=1e-6)

    def test_relu_sigmoid_tanh_wrappers(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(F.relu(x).data, [0.0, 0.0, 2.0])
        np.testing.assert_allclose(F.sigmoid(x).data, 1 / (1 + np.exp([1.0, 0.0, -2.0])))
        np.testing.assert_allclose(F.tanh(x).data, np.tanh([-1.0, 0.0, 2.0]))


class TestNormalisation:
    def test_l2_normalize_unit_rows(self):
        x = Tensor(np.random.default_rng(3).normal(size=(6, 4)) * 10)
        norms = np.linalg.norm(F.l2_normalize(x).data, axis=1)
        np.testing.assert_allclose(norms, np.ones(6), atol=1e-9)

    def test_l2_normalize_zero_row_is_safe(self):
        x = Tensor(np.zeros((2, 3)))
        out = F.l2_normalize(x).data
        assert np.isfinite(out).all()

    def test_cosine_similarity_range(self):
        rng = np.random.default_rng(4)
        a, b = Tensor(rng.normal(size=(10, 5))), Tensor(rng.normal(size=(10, 5)))
        sims = F.cosine_similarity(a, b).data
        assert (sims <= 1.0 + 1e-9).all() and (sims >= -1.0 - 1e-9).all()

    def test_cosine_similarity_of_identical_rows_is_one(self):
        a = Tensor(np.random.default_rng(5).normal(size=(4, 3)))
        np.testing.assert_allclose(F.cosine_similarity(a, a).data, np.ones(4), atol=1e-9)

    def test_pairwise_cosine_shape_and_diagonal(self):
        a = Tensor(np.random.default_rng(6).normal(size=(5, 4)))
        matrix = F.pairwise_cosine(a, a).data
        assert matrix.shape == (5, 5)
        np.testing.assert_allclose(np.diag(matrix), np.ones(5), atol=1e-9)


class TestLosses:
    def test_bpr_loss_lower_when_positives_score_higher(self):
        pos = Tensor(np.full(8, 3.0))
        neg = Tensor(np.full(8, -3.0))
        good = F.bpr_loss(pos, neg).item()
        bad = F.bpr_loss(neg, pos).item()
        assert good < bad
        assert good > 0

    def test_bpr_loss_equal_scores(self):
        scores = Tensor(np.zeros(5))
        assert F.bpr_loss(scores, scores).item() == pytest.approx(np.log(2.0))

    def test_mse_loss_zero_for_identical(self):
        x = Tensor(np.random.default_rng(7).normal(size=(3, 3)))
        assert F.mse_loss(x, x.data).item() == pytest.approx(0.0)

    def test_mse_loss_matches_numpy(self):
        rng = np.random.default_rng(8)
        a, b = rng.normal(size=(4, 2)), rng.normal(size=(4, 2))
        assert F.mse_loss(Tensor(a), Tensor(b)).item() == pytest.approx(np.mean((a - b) ** 2))

    def test_bce_loss_confident_correct_is_small(self):
        logits = Tensor(np.array([10.0, -10.0]))
        labels = np.array([1.0, 0.0])
        assert F.bce_loss(logits, labels).item() < 1e-3

    def test_bce_loss_confident_wrong_is_large(self):
        logits = Tensor(np.array([10.0, -10.0]))
        labels = np.array([0.0, 1.0])
        assert F.bce_loss(logits, labels).item() > 5.0

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[20.0, 0.0, 0.0], [0.0, 20.0, 0.0]]))
        assert F.cross_entropy_loss(logits, np.array([0, 1])).item() < 1e-6

    def test_cross_entropy_uniform_prediction(self):
        logits = Tensor(np.zeros((4, 5)))
        assert F.cross_entropy_loss(logits, np.zeros(4, dtype=int)).item() == pytest.approx(np.log(5.0))

    def test_l2_regularization_scale(self):
        x = Tensor(np.ones((4, 3)))
        # 0.5 * sum(x^2) / batch = 0.5 * 12 / 4
        assert F.l2_regularization(x).item() == pytest.approx(1.5)

    def test_l2_regularization_multiple_tensors(self):
        x = Tensor(np.ones((2, 2)))
        y = Tensor(np.ones((2, 2)) * 2)
        assert F.l2_regularization(x, y).item() == pytest.approx(0.5 * (4 + 16) / 2)

    def test_info_nce_aligned_pairs_beat_shuffled(self):
        rng = np.random.default_rng(9)
        anchor = rng.normal(size=(16, 8))
        aligned = F.info_nce(Tensor(anchor), Tensor(anchor + 0.01 * rng.normal(size=(16, 8)))).item()
        shuffled = F.info_nce(Tensor(anchor), Tensor(anchor[rng.permutation(16)])).item()
        assert aligned < shuffled

    def test_info_nce_temperature_sharpens(self):
        rng = np.random.default_rng(10)
        anchor = rng.normal(size=(12, 6))
        positive = anchor + 0.05 * rng.normal(size=(12, 6))
        sharp = F.info_nce(Tensor(anchor), Tensor(positive), temperature=0.05).item()
        flat = F.info_nce(Tensor(anchor), Tensor(positive), temperature=5.0).item()
        assert sharp < flat

    def test_dot_scores_shape(self):
        users = Tensor(np.random.default_rng(11).normal(size=(7, 4)))
        items = Tensor(np.random.default_rng(12).normal(size=(9, 4)))
        assert F.dot_scores(users, items).shape == (7, 9)


class TestLossGradients:
    def test_bpr_loss_gradient_direction(self):
        pos = Tensor(np.zeros(4), requires_grad=True)
        neg = Tensor(np.zeros(4), requires_grad=True)
        F.bpr_loss(pos, neg).backward()
        # Increasing positive scores should decrease the loss (negative gradient).
        assert (pos.grad < 0).all()
        assert (neg.grad > 0).all()

    def test_info_nce_gradient_flows_to_both_sides(self):
        rng = np.random.default_rng(13)
        anchor = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        positive = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        F.info_nce(anchor, positive).backward()
        assert anchor.grad is not None and np.abs(anchor.grad).sum() > 0
        assert positive.grad is not None and np.abs(positive.grad).sum() > 0

    def test_cross_entropy_gradient_shape(self):
        logits = Tensor(np.random.default_rng(14).normal(size=(5, 3)), requires_grad=True)
        F.cross_entropy_loss(logits, np.array([0, 1, 2, 1, 0])).backward()
        assert logits.grad.shape == (5, 3)
