"""Weight initialisation statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import init


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestInitializers:
    def test_xavier_uniform_bounds(self, rng):
        weights = init.xavier_uniform((200, 100), rng)
        limit = np.sqrt(6.0 / 300)
        assert weights.min() >= -limit and weights.max() <= limit
        assert abs(weights.mean()) < 0.01

    def test_xavier_normal_std(self, rng):
        weights = init.xavier_normal((400, 100), rng)
        expected_std = np.sqrt(2.0 / 500)
        assert abs(weights.std() - expected_std) < expected_std * 0.1

    def test_kaiming_uniform_bounds(self, rng):
        weights = init.kaiming_uniform((300, 50), rng)
        limit = np.sqrt(6.0 / 50)
        assert weights.min() >= -limit and weights.max() <= limit

    def test_normal_std(self, rng):
        weights = init.normal((500, 20), rng, std=0.3)
        assert abs(weights.std() - 0.3) < 0.03

    def test_zeros(self):
        np.testing.assert_array_equal(init.zeros((3, 4)), np.zeros((3, 4)))

    def test_one_dimensional_fans(self, rng):
        weights = init.xavier_uniform((64,), rng)
        assert weights.shape == (64,)
        assert np.isfinite(weights).all()
