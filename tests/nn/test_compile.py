"""Trace/replay compilation: bit-identity vs eager, fusion, guards, fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Adam,
    CompiledStep,
    Dropout,
    Parameter,
    Tensor,
    TraceError,
    as_tensor,
    compile as nn_compile,
    sparse_dense_matmul,
    trace_program,
)

import scipy.sparse as sp


def run_both_arms(step_fn, make_params, inputs_seq, lr=0.05):
    """Run eager and replay arms in lockstep; assert bit-identical results.

    After every step both arms apply the same plain SGD update so parameter
    values drift away from their initialisation — equality on step one alone
    would not exercise buffer reuse across replays.
    """
    eager_params = make_params()
    replay_params = make_params()
    eager_step = nn_compile(step_fn, mode="eager")
    replay_step = nn_compile(step_fn)
    for arm_a, arm_b in zip(eager_params, replay_params):
        np.testing.assert_array_equal(arm_a.data, arm_b.data)
    for inputs in inputs_seq:
        eager_loss = eager_step(eager_params, inputs)
        replay_loss = replay_step(replay_params, inputs)
        assert eager_loss == replay_loss  # bitwise, not approx
        for eager_param, replay_param in zip(eager_params, replay_params):
            if eager_param.grad is None:
                assert replay_param.grad is None
                continue
            np.testing.assert_array_equal(eager_param.grad, replay_param.grad)
            eager_param.data = eager_param.data - lr * eager_param.grad
            replay_param.data = replay_param.data - lr * replay_param.grad
    assert replay_step.stats.traces == 1
    assert replay_step.stats.replays == len(inputs_seq)
    return replay_step


def make_params_factory(*arrays):
    def factory():
        return [Parameter(np.array(a, dtype=np.float64)) for a in arrays]

    return factory


RNG = np.random.default_rng(7)
X = RNG.normal(size=(6, 4))
W = RNG.normal(size=(4, 3))
B = RNG.normal(size=(3,))


class TestPerOpBitIdentity:
    """Each primitive replays bit-identically to its eager evaluation."""

    @pytest.mark.parametrize(
        "name,expr",
        [
            ("add", lambda p, i: (p[0] + i["x"]).sum()),
            ("sub", lambda p, i: (p[0] - i["x"]).sum()),
            ("mul", lambda p, i: (p[0] * i["x"]).sum()),
            ("div", lambda p, i: (p[0] / (i["x"] * i["x"] + 1.0)).sum()),
            ("neg", lambda p, i: (-p[0]).sum()),
            ("pow", lambda p, i: (p[0] ** 3).sum()),
            ("exp", lambda p, i: (p[0] * 0.1).exp().sum()),
            ("log", lambda p, i: (p[0] * p[0] + 1.0).log().sum()),
            ("relu", lambda p, i: p[0].relu().sum()),
            ("leaky_relu", lambda p, i: p[0].leaky_relu(0.2).sum()),
            ("softplus", lambda p, i: p[0].softplus().sum()),
            ("sigmoid", lambda p, i: p[0].sigmoid().sum()),
            ("tanh", lambda p, i: p[0].tanh().sum()),
            ("abs", lambda p, i: p[0].abs().sum()),
            ("clip", lambda p, i: p[0].clip(-0.5, 0.5).sum()),
            ("mean", lambda p, i: (p[0] * i["x"]).mean()),
            ("sum_axis", lambda p, i: (p[0] * i["x"]).sum(axis=0).sum()),
            ("mean_axis", lambda p, i: (p[0] * i["x"]).mean(axis=1).sum()),
            ("reshape", lambda p, i: (p[0].reshape((2, 12)) * 2.0).sum()),
            ("transpose", lambda p, i: (p[0].transpose() @ i["x"]).sum()),
            ("getitem", lambda p, i: (p[0][1:4] * 3.0).sum()),
            (
                "amax",
                lambda p, i: ((p[0] - p[0].amax(axis=1, keepdims=True)).exp().sum()),
            ),
            (
                "concat",
                lambda p, i: Tensor.concat([p[0] * 2.0, p[0] + 1.0], axis=0).sum(),
            ),
            (
                "stack",
                lambda p, i: Tensor.stack([p[0] * 2.0, p[0] + 1.0], axis=0).sum(),
            ),
        ],
    )
    def test_op(self, name, expr):
        inputs_seq = [{"x": RNG.normal(size=X.shape)} for _ in range(3)]
        run_both_arms(expr, make_params_factory(X), inputs_seq)

    def test_matmul_2d(self):
        def step(p, i):
            return ((i["x"] @ p[0]) + p[1]).sigmoid().sum()

        inputs_seq = [{"x": RNG.normal(size=X.shape)} for _ in range(3)]
        run_both_arms(step, make_params_factory(W, B), inputs_seq)

    def test_matmul_vector_cases(self):
        v = RNG.normal(size=4)

        def step(p, i):
            mat_vec = p[0].transpose() @ as_tensor(v)  # (3,4) @ (4,) -> (3,)
            vec_vec = mat_vec @ mat_vec  # (3,) @ (3,) -> scalar
            return vec_vec

        run_both_arms(step, make_params_factory(W), [{} for _ in range(3)])

    def test_take_rows_static(self):
        idx = np.array([0, 2, 2, 5])

        def step(p, i):
            return (p[0].take_rows(idx) * 2.0).sum()

        run_both_arms(step, make_params_factory(X), [{} for _ in range(3)])

    def test_take_rows_dynamic_reads_fresh_indices_each_replay(self):
        def step(p, i):
            return (p[0].take_rows(i["idx"]) * 2.0).sum()

        inputs_seq = [{"idx": RNG.integers(0, 6, size=5)} for _ in range(4)]
        run_both_arms(step, make_params_factory(X), inputs_seq)

    def test_sparse_matmul(self):
        matrix = sp.random(8, 6, density=0.4, random_state=3, format="csr")

        def step(p, i):
            return sparse_dense_matmul(matrix, p[0]).tanh().sum()

        run_both_arms(step, make_params_factory(X), [{} for _ in range(3)])

    def test_broadcast_gradients_match(self):
        bias = RNG.normal(size=(1, 4))
        scalar = np.array(0.5)

        def step(p, i):
            return ((i["x"] + p[0]) * p[1]).sum()

        inputs_seq = [{"x": RNG.normal(size=X.shape)} for _ in range(3)]
        run_both_arms(step, make_params_factory(bias, scalar), inputs_seq)

    def test_shared_subexpression_accumulates_identically(self):
        def step(p, i):
            hidden = p[0] * i["x"]
            return (hidden.sum() + (hidden * hidden).sum()) * 0.5

        inputs_seq = [{"x": RNG.normal(size=X.shape)} for _ in range(3)]
        run_both_arms(step, make_params_factory(X), inputs_seq)


class TestMultiStepTraining:
    def test_adam_training_run_is_bit_identical(self):
        """Full multi-epoch optimisation: losses and params match bitwise."""

        def step(p, i):
            logits = (i["x"] @ p[0]) + p[1]
            return ((logits.sigmoid() - i["y"]) ** 2).mean()

        def build_arm(mode):
            params = [Parameter(W.copy()), Parameter(B.copy())]
            return params, nn_compile(step, mode=mode), None

        eager_params, eager_step, _ = build_arm("eager")
        replay_params, replay_step, _ = build_arm("replay")
        eager_opt = Adam(eager_params, lr=0.01)
        replay_opt = Adam(replay_params, lr=0.01)

        rng_a = np.random.default_rng(11)
        rng_b = np.random.default_rng(11)
        eager_losses, replay_losses = [], []
        for _ in range(20):
            batch_a = {"x": rng_a.normal(size=(6, 4)), "y": rng_a.random((6, 3))}
            batch_b = {"x": rng_b.normal(size=(6, 4)), "y": rng_b.random((6, 3))}
            eager_losses.append(eager_step(eager_params, batch_a))
            eager_opt.step()
            replay_losses.append(replay_step(replay_params, batch_b))
            replay_opt.step()
        assert eager_losses == replay_losses
        for pa, pb in zip(eager_params, replay_params):
            np.testing.assert_array_equal(pa.data, pb.data)
        assert replay_step.stats.traces == 1
        assert replay_step.stats.replays == 20


class TestFusion:
    def test_elementwise_chain_shares_buffers(self):
        def step(p, i):
            return ((p[0] * 2.0) + 1.0).sum()

        compiled = nn_compile(step)
        params = [Parameter(X.copy())]
        compiled(params, {})
        program = compiled.program_for(params, {})
        assert program is not None
        assert sum(1 for node in program.nodes if node.fused) >= 2

    def test_fused_chain_stays_bit_identical(self):
        def step(p, i):
            # mul -> add -> sub -> neg: a chain of value-dead elementwise ops.
            return (-(((p[0] * i["x"]) + 2.0) - 0.5)).sum()

        inputs_seq = [{"x": RNG.normal(size=X.shape)} for _ in range(4)]
        compiled = run_both_arms(step, make_params_factory(X), inputs_seq)
        assert compiled.stats.fused_nodes >= 2

    def test_value_needed_ops_do_not_fuse_incorrectly(self):
        # clip's VJP reads its input and exp's VJP reads its output, so the
        # clip -> exp chain must NOT share a buffer; equality proves planning
        # stayed conservative.
        def step(p, i):
            return p[0].clip(-1.0, 1.0).exp().sum()

        run_both_arms(step, make_params_factory(X), [{} for _ in range(3)])


class TestShapeGuard:
    def test_shape_change_compiles_second_program(self):
        def step(p, i):
            return (i["x"] @ p[0]).sum()

        compiled = nn_compile(step)
        params = [Parameter(W.copy())]
        compiled(params, {"x": np.ones((5, 4))})
        compiled(params, {"x": np.ones((9, 4))})
        compiled(params, {"x": np.ones((5, 4))})  # cached, no new trace
        assert compiled.stats.traces == 2
        assert compiled.stats.programs == 2
        assert compiled.stats.replays == 3

    def test_dtype_change_compiles_second_program(self):
        def step(p, i):
            return (i["x"] @ p[0]).sum()

        compiled = nn_compile(step)
        params = [Parameter(W.copy())]
        compiled(params, {"x": np.ones((5, 4))})
        compiled(params, {"x": np.ones((5, 4), dtype=np.float32)})
        assert compiled.stats.traces == 2

    def test_cache_eviction_is_bounded(self):
        def step(p, i):
            return (i["x"] @ p[0]).sum()

        compiled = nn_compile(step, cache_size=2)
        params = [Parameter(W.copy())]
        for rows in (3, 5, 7):
            compiled(params, {"x": np.ones((rows, 4))})
        assert compiled.stats.programs == 2  # oldest evicted
        compiled(params, {"x": np.ones((3, 4))})  # evicted -> re-traced
        assert compiled.stats.traces == 4


class TestFallback:
    def test_active_dropout_falls_back_to_eager(self):
        dropout = Dropout(0.5)

        def step(p, i):
            return dropout(p[0] * 2.0).sum()

        compiled = nn_compile(step)
        params = [Parameter(X.copy())]
        losses = [compiled(params, {}) for _ in range(3)]
        assert all(np.isfinite(losses))
        assert params[0].grad is not None
        assert compiled.stats.fallbacks == 1
        assert compiled.stats.traces == 0
        assert compiled.stats.eager_calls == 3

    def test_eval_dropout_traces_fine(self):
        dropout = Dropout(0.5)
        dropout.eval()

        def step(p, i):
            return dropout(p[0] * 2.0).sum()

        compiled = nn_compile(step)
        params = [Parameter(X.copy())]
        compiled(params, {})
        assert compiled.stats.traces == 1
        assert compiled.stats.fallbacks == 0

    def test_eager_mode_never_traces(self):
        def step(p, i):
            return (p[0] * 2.0).sum()

        compiled = nn_compile(step, mode="eager")
        params = [Parameter(X.copy())]
        compiled(params, {})
        assert compiled.mode == "eager"
        assert compiled.stats.traces == 0
        assert compiled.stats.eager_calls == 1


class TestValidation:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            CompiledStep(lambda p, i: None, mode="jit")

    def test_invalid_cache_size_rejected(self):
        with pytest.raises(ValueError):
            CompiledStep(lambda p, i: None, cache_size=0)

    def test_non_scalar_loss_rejected(self):
        params = [Parameter(X.copy())]
        with pytest.raises(TraceError):
            trace_program(lambda p, i: p[0] * 2.0, params, {})

    def test_non_tensor_loss_rejected(self):
        params = [Parameter(X.copy())]
        with pytest.raises(TraceError):
            trace_program(lambda p, i: 3.0, params, {})

    def test_trace_program_returns_loss_value(self):
        def step(p, i):
            return (p[0] * 2.0).sum()

        params = [Parameter(np.ones((2, 2)))]
        program, loss = trace_program(step, params, {})
        assert loss == 8.0
        assert program.run(params, {}) == 8.0
