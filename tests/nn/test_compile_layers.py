"""Eager-vs-compiled equivalence for every layer and optimiser (f32 + f64)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Adam,
    Dropout,
    Embedding,
    Linear,
    SGD,
    Sequential,
    Tensor,
    compile as nn_compile,
)

DTYPES = [np.float32, np.float64]


def cast_params(module, dtype):
    params = list(module.parameters())
    for param in params:
        param.data = param.data.astype(dtype)
    return params


def assert_arms_identical(build_module, step_of, inputs_seq, dtype, lr=0.05):
    """Two freshly built modules, one per execution arm, stay bitwise equal."""
    eager_module, replay_module = build_module(), build_module()
    eager_params = cast_params(eager_module, dtype)
    replay_params = cast_params(replay_module, dtype)
    eager_step = nn_compile(step_of(eager_module), mode="eager")
    replay_step = nn_compile(step_of(replay_module))
    for inputs in inputs_seq:
        eager_loss = eager_step(eager_params, inputs)
        replay_loss = replay_step(replay_params, inputs)
        assert eager_loss == replay_loss
        for eager_param, replay_param in zip(eager_params, replay_params):
            assert eager_param.grad.dtype == replay_param.grad.dtype == np.dtype(dtype)
            np.testing.assert_array_equal(eager_param.grad, replay_param.grad)
            eager_param.data = eager_param.data - lr * eager_param.grad
            replay_param.data = replay_param.data - lr * replay_param.grad
    return replay_step


RNG = np.random.default_rng(5)


def batches(shape, count=3, seed=9):
    rng = np.random.default_rng(seed)
    return [{"x": rng.normal(size=shape)} for _ in range(count)]


@pytest.mark.parametrize("dtype", DTYPES)
class TestLayerEquivalence:
    def test_linear(self, dtype):
        def step_of(module):
            return lambda p, i: module(i["x"]).sum()

        assert_arms_identical(
            lambda: Linear(4, 3, rng=np.random.default_rng(0)),
            step_of,
            batches((6, 4)),
            dtype,
        )

    def test_linear_without_bias(self, dtype):
        def step_of(module):
            return lambda p, i: (module(i["x"]) ** 2).mean()

        assert_arms_identical(
            lambda: Linear(4, 3, bias=False, rng=np.random.default_rng(0)),
            step_of,
            batches((6, 4)),
            dtype,
        )

    def test_mlp(self, dtype):
        def step_of(module):
            return lambda p, i: module(i["x"]).tanh().sum()

        for activation in ("relu", "tanh", "leaky_relu", "identity"):
            assert_arms_identical(
                lambda: MLP(4, [8], 2, activation=activation, rng=np.random.default_rng(1)),
                step_of,
                batches((5, 4)),
                dtype,
            )

    def test_sequential_with_callable_stage(self, dtype):
        def build():
            rng = np.random.default_rng(2)
            return Sequential(Linear(4, 6, rng=rng), Tensor.tanh, Linear(6, 2, rng=rng))

        def step_of(module):
            return lambda p, i: module(i["x"]).sum()

        assert_arms_identical(build, step_of, batches((5, 4)), dtype)

    def test_embedding_dynamic_lookup(self, dtype):
        rng = np.random.default_rng(3)
        inputs_seq = [{"idx": rng.integers(0, 10, size=7)} for _ in range(3)]

        def step_of(module):
            return lambda p, i: (module(i["idx"]) ** 2).sum()

        assert_arms_identical(
            lambda: Embedding(10, 4, rng=np.random.default_rng(4)),
            step_of,
            inputs_seq,
            dtype,
        )

    def test_eval_dropout_is_traceable_identity(self, dtype):
        def build():
            rng = np.random.default_rng(6)
            module = Sequential(Linear(4, 3, rng=rng), Dropout(0.5))
            module.eval()
            return module

        def step_of(module):
            return lambda p, i: module(i["x"]).sum()

        compiled = assert_arms_identical(build, step_of, batches((5, 4)), dtype)
        assert compiled.stats.traces == 1
        assert compiled.stats.fallbacks == 0

    def test_training_dropout_falls_back_but_still_trains(self, dtype):
        module = Sequential(Linear(4, 3, rng=np.random.default_rng(6)), Dropout(0.5))
        params = cast_params(module, dtype)
        compiled = nn_compile(lambda p, i: module(i["x"]).sum())
        for inputs in batches((5, 4)):
            loss = compiled(params, inputs)
            assert np.isfinite(loss)
            assert params[0].grad is not None
        assert compiled.stats.fallbacks == 1
        assert compiled.stats.traces == 0


@pytest.mark.parametrize("dtype", DTYPES)
class TestOptimizerEquivalence:
    """Whole training trajectories coincide bitwise under both optimisers."""

    def _run(self, dtype, make_optimizer, steps=12):
        def build():
            return MLP(4, [6], 2, rng=np.random.default_rng(8))

        eager_module, replay_module = build(), build()
        eager_params = cast_params(eager_module, dtype)
        replay_params = cast_params(replay_module, dtype)

        def step_of(module):
            return lambda p, i: ((module(i["x"]) - i["y"]) ** 2).mean()

        eager_step = nn_compile(step_of(eager_module), mode="eager")
        replay_step = nn_compile(step_of(replay_module))
        eager_opt = make_optimizer(eager_params)
        replay_opt = make_optimizer(replay_params)

        rng_a, rng_b = np.random.default_rng(13), np.random.default_rng(13)
        for _ in range(steps):
            inputs_a = {"x": rng_a.normal(size=(6, 4)), "y": rng_a.random((6, 2))}
            inputs_b = {"x": rng_b.normal(size=(6, 4)), "y": rng_b.random((6, 2))}
            loss_a = eager_step(eager_params, inputs_a)
            eager_opt.step()
            loss_b = replay_step(replay_params, inputs_b)
            replay_opt.step()
            assert loss_a == loss_b
        for pa, pb in zip(eager_params, replay_params):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_sgd(self, dtype):
        self._run(dtype, lambda params: SGD(params, lr=0.05))

    def test_sgd_with_momentum_and_weight_decay(self, dtype):
        self._run(dtype, lambda params: SGD(params, lr=0.05, momentum=0.9, weight_decay=1e-4))

    def test_adam(self, dtype):
        self._run(dtype, lambda params: Adam(params, lr=0.01))

    def test_adam_with_weight_decay(self, dtype):
        self._run(dtype, lambda params: Adam(params, lr=0.01, weight_decay=1e-4))
