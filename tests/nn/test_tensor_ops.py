"""Gradient correctness of every Tensor primitive against finite differences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor


def numerical_gradient(fn, value: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of a scalar-valued ``fn``."""
    gradient = np.zeros_like(value, dtype=np.float64)
    flat_value = value.reshape(-1)
    flat_gradient = gradient.reshape(-1)
    for index in range(flat_value.size):
        original = flat_value[index]
        flat_value[index] = original + eps
        upper = fn(value)
        flat_value[index] = original - eps
        lower = fn(value)
        flat_value[index] = original
        flat_gradient[index] = (upper - lower) / (2.0 * eps)
    return gradient


def check_gradient(build_loss, shape=(4, 3), seed=0, atol=1e-5):
    """Compare autograd gradients with numerical ones for a random input."""
    rng = np.random.default_rng(seed)
    value = rng.normal(0.0, 1.0, size=shape)
    tensor = Tensor(value.copy(), requires_grad=True)
    loss = build_loss(tensor)
    loss.backward()

    def scalar_fn(array: np.ndarray) -> float:
        return float(build_loss(Tensor(array.copy())).data)

    expected = numerical_gradient(scalar_fn, value.copy())
    np.testing.assert_allclose(tensor.grad, expected, atol=atol, rtol=1e-4)


class TestArithmeticGradients:
    def test_add(self):
        check_gradient(lambda t: (t + 2.5).sum())

    def test_add_broadcast(self):
        other = Tensor(np.ones((1, 3)) * 0.5)
        check_gradient(lambda t: (t + other).sum())

    def test_sub(self):
        check_gradient(lambda t: (t - 1.3).sum())

    def test_rsub(self):
        check_gradient(lambda t: (1.3 - t).sum())

    def test_mul(self):
        check_gradient(lambda t: (t * t).sum())

    def test_mul_broadcast(self):
        scale = Tensor(np.arange(1, 4, dtype=float))
        check_gradient(lambda t: (t * scale).sum())

    def test_div(self):
        check_gradient(lambda t: (t / 2.0).sum())

    def test_rdiv(self):
        check_gradient(lambda t: (1.0 / (t + 5.0)).sum(), shape=(3, 2))

    def test_neg(self):
        check_gradient(lambda t: (-t).sum())

    def test_pow(self):
        check_gradient(lambda t: ((t + 5.0) ** 3).sum())

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(3)) ** Tensor(np.ones(3))


class TestMatmulGradients:
    def test_matmul_2d(self):
        other = Tensor(np.random.default_rng(1).normal(size=(3, 5)))
        check_gradient(lambda t: (t @ other).sum())

    def test_matmul_right_operand(self):
        rng = np.random.default_rng(2)
        left_value = rng.normal(size=(4, 3))
        right = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        loss = (Tensor(left_value) @ right).sum()
        loss.backward()

        def scalar_fn(array):
            return float((Tensor(left_value) @ Tensor(array.copy())).sum().data)

        expected = numerical_gradient(scalar_fn, right.data.copy())
        np.testing.assert_allclose(right.grad, expected, atol=1e-5)

    def test_matvec(self):
        vector = Tensor(np.arange(3, dtype=float))
        check_gradient(lambda t: (t @ vector).sum())

    def test_vecmat(self):
        matrix = Tensor(np.random.default_rng(3).normal(size=(3, 4)))
        check_gradient(lambda t: (t @ matrix).sum(), shape=(3,))


class TestReductionGradients:
    def test_sum_all(self):
        check_gradient(lambda t: t.sum())

    def test_sum_axis_keepdims(self):
        check_gradient(lambda t: (t.sum(axis=1, keepdims=True) ** 2).sum())

    def test_sum_axis_no_keepdims(self):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum())

    def test_mean_all(self):
        check_gradient(lambda t: t.mean() * 7.0)

    def test_mean_axis(self):
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum())


class TestElementwiseGradients:
    def test_exp(self):
        check_gradient(lambda t: t.exp().sum())

    def test_log(self):
        check_gradient(lambda t: (t + 10.0).log().sum())

    def test_sqrt(self):
        check_gradient(lambda t: (t + 10.0).sqrt().sum())

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid().sum())

    def test_tanh(self):
        check_gradient(lambda t: t.tanh().sum())

    def test_relu(self):
        # Shift away from zero to avoid the kink in the finite-difference check.
        check_gradient(lambda t: (t + 3.0).relu().sum())

    def test_leaky_relu(self):
        check_gradient(lambda t: (t + 3.0).leaky_relu(0.1).sum())

    def test_abs(self):
        check_gradient(lambda t: (t + 3.0).abs().sum())

    def test_clip_interior(self):
        check_gradient(lambda t: t.clip(-10.0, 10.0).sum())

    def test_clip_blocks_gradient_outside_range(self):
        tensor = Tensor(np.array([5.0, -5.0, 0.5]), requires_grad=True)
        tensor.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(tensor.grad, [0.0, 0.0, 1.0])


class TestShapeGradients:
    def test_reshape(self):
        check_gradient(lambda t: (t.reshape(12) ** 2).sum(), shape=(4, 3))

    def test_reshape_tuple_argument(self):
        check_gradient(lambda t: (t.reshape((2, 6)) ** 2).sum(), shape=(4, 3))

    def test_transpose(self):
        check_gradient(lambda t: (t.T ** 2).sum())

    def test_take_rows(self):
        indices = np.array([0, 2, 2, 1])
        check_gradient(lambda t: (t.take_rows(indices) ** 2).sum())

    def test_take_rows_duplicate_accumulation(self):
        tensor = Tensor(np.ones((3, 2)), requires_grad=True)
        tensor.take_rows(np.array([1, 1, 1])).sum().backward()
        np.testing.assert_allclose(tensor.grad, [[0, 0], [3, 3], [0, 0]])

    def test_getitem_slice(self):
        check_gradient(lambda t: (t[1:3] ** 2).sum())

    def test_getitem_fancy_tuple(self):
        rows = np.array([0, 1, 2])
        cols = np.array([1, 0, 2])
        check_gradient(lambda t: (t[rows, cols] ** 2).sum())

    def test_concat(self):
        other = Tensor(np.ones((2, 3)), requires_grad=True)
        tensor = Tensor(np.full((4, 3), 2.0), requires_grad=True)
        Tensor.concat([tensor, other], axis=0).sum().backward()
        np.testing.assert_allclose(tensor.grad, np.ones((4, 3)))
        np.testing.assert_allclose(other.grad, np.ones((2, 3)))

    def test_concat_axis1_gradient(self):
        check_gradient(
            lambda t: (Tensor.concat([t, t * 2.0], axis=1) ** 2).sum(),
            shape=(3, 2),
        )

    def test_stack(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.full(3, 2.0), requires_grad=True)
        (Tensor.stack([a, b], axis=0) * Tensor(np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]))).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(b.grad, [4.0, 5.0, 6.0])


class TestForwardValues:
    def test_add_matches_numpy(self):
        a = np.arange(6, dtype=float).reshape(2, 3)
        b = np.ones((2, 3)) * 2
        np.testing.assert_allclose((Tensor(a) + Tensor(b)).data, a + b)

    def test_matmul_matches_numpy(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 2))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_integer_input_promoted_to_float(self):
        tensor = Tensor(np.array([1, 2, 3]))
        assert np.issubdtype(tensor.dtype, np.floating)

    def test_item_and_len(self):
        assert Tensor(np.array([3.5])).item() == pytest.approx(3.5)
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_repr_mentions_shape_and_grad(self):
        text = repr(Tensor(np.zeros((2, 2)), requires_grad=True))
        assert "(2, 2)" in text and "requires_grad" in text
