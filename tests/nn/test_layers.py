"""Module / layer behaviour: parameter discovery, forward shapes, state dicts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import MLP, Dropout, Embedding, Linear, Module, Parameter, Sequential, Tensor


class TestModuleParameterDiscovery:
    def test_linear_has_weight_and_bias(self):
        layer = Linear(4, 3)
        names = {name for name, _ in layer.named_parameters()}
        assert any("weight" in n for n in names)
        assert any("bias" in n for n in names)
        assert layer.num_parameters() == 4 * 3 + 3

    def test_linear_without_bias(self):
        layer = Linear(4, 3, bias=False)
        assert layer.num_parameters() == 12

    def test_nested_modules_and_lists_are_traversed(self):
        class Composite(Module):
            def __init__(self):
                super().__init__()
                self.layers = [Linear(2, 2), Linear(2, 2)]
                self.table = {"head": Linear(2, 1)}

        model = Composite()
        assert len(list(model.parameters())) == 6

    def test_shared_parameter_counted_once(self):
        class Shared(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(3, 3)
                self.b = self.a

        assert len(list(Shared().parameters())) == 2

    def test_zero_grad_clears_all(self):
        layer = Linear(3, 2)
        out = layer(Tensor(np.ones((4, 3)))).sum()
        out.backward()
        assert any(p.grad is not None for p in layer.parameters())
        layer.zero_grad()
        assert all(p.grad is None for p in layer.parameters())

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(5, 3)
        assert layer(Tensor(np.ones((7, 5)))).shape == (7, 3)

    def test_forward_matches_manual_computation(self):
        layer = Linear(3, 2)
        x = np.random.default_rng(0).normal(size=(4, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_gradients_reach_parameters(self):
        layer = Linear(3, 2)
        layer(Tensor(np.ones((4, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestMLP:
    def test_output_shape(self):
        mlp = MLP(8, [16, 16], 4)
        assert mlp(Tensor(np.ones((5, 8)))).shape == (5, 4)

    def test_no_hidden_layers(self):
        mlp = MLP(6, [], 2)
        assert len(mlp.layers) == 1
        assert mlp(Tensor(np.ones((3, 6)))).shape == (3, 2)

    def test_invalid_activation_rejected(self):
        with pytest.raises(ValueError):
            MLP(4, [4], 2, activation="swishish")

    @pytest.mark.parametrize("activation", ["relu", "tanh", "leaky_relu", "identity"])
    def test_all_activations_run(self, activation):
        mlp = MLP(4, [6], 2, activation=activation)
        out = mlp(Tensor(np.random.default_rng(1).normal(size=(3, 4))))
        assert np.isfinite(out.data).all()

    def test_gradient_flows_through_all_layers(self):
        mlp = MLP(4, [8, 8], 2)
        mlp(Tensor(np.random.default_rng(2).normal(size=(6, 4)))).sum().backward()
        for param in mlp.parameters():
            assert param.grad is not None

    def test_dropout_only_between_layers_in_training(self):
        mlp = MLP(4, [8], 2, dropout=0.5)
        mlp.eval()
        x = Tensor(np.random.default_rng(3).normal(size=(5, 4)))
        out_a = mlp(x).data
        out_b = mlp(x).data
        np.testing.assert_allclose(out_a, out_b)


class TestEmbedding:
    def test_lookup_shape(self):
        table = Embedding(10, 6)
        assert table(np.array([0, 3, 9])).shape == (3, 6)

    def test_duplicate_indices_accumulate_gradient(self):
        table = Embedding(5, 2)
        table(np.array([1, 1, 2])).sum().backward()
        np.testing.assert_allclose(table.weight.grad[1], [2.0, 2.0])
        np.testing.assert_allclose(table.weight.grad[2], [1.0, 1.0])
        np.testing.assert_allclose(table.weight.grad[0], [0.0, 0.0])

    def test_all_returns_full_table(self):
        table = Embedding(7, 3)
        assert table.all().shape == (7, 3)

    def test_normal_initialisation_std(self):
        table = Embedding(2000, 8, std=0.05, rng=np.random.default_rng(0))
        assert abs(table.weight.data.std() - 0.05) < 0.01


class TestDropout:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5)
        layer.eval()
        x = Tensor(np.ones((10, 10)))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_training_mode_zeroes_roughly_rate_fraction(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((200, 200)))).data
        zero_fraction = np.mean(out == 0.0)
        assert 0.4 < zero_fraction < 0.6

    def test_training_mode_preserves_expectation(self):
        layer = Dropout(0.3, rng=np.random.default_rng(1))
        out = layer(Tensor(np.ones((300, 300)))).data
        assert abs(out.mean() - 1.0) < 0.05

    def test_zero_rate_is_identity_even_in_training(self):
        layer = Dropout(0.0)
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(layer(x).data, x.data)


class TestSequentialAndModes:
    def test_sequential_applies_in_order(self):
        seq = Sequential(Linear(3, 5), lambda t: t.relu(), Linear(5, 2))
        assert seq(Tensor(np.ones((4, 3)))).shape == (4, 2)

    def test_train_eval_propagates_to_children(self):
        seq = Sequential(Dropout(0.5), Linear(3, 3))
        seq.eval()
        assert not seq.stages[0].training
        seq.train()
        assert seq.stages[0].training


class TestStateDict:
    def test_roundtrip(self):
        source = MLP(4, [6], 2, rng=np.random.default_rng(1))
        target = MLP(4, [6], 2, rng=np.random.default_rng(2))
        target.load_state_dict(source.state_dict())
        x = Tensor(np.random.default_rng(3).normal(size=(5, 4)))
        np.testing.assert_allclose(source(x).data, target(x).data)

    def test_mismatched_keys_rejected(self):
        source = Linear(3, 3)
        target = MLP(3, [3], 3)
        with pytest.raises(KeyError):
            target.load_state_dict(source.state_dict())

    def test_shape_mismatch_rejected(self):
        source = Linear(3, 3)
        target = Linear(3, 4)
        state = source.state_dict()
        with pytest.raises((KeyError, ValueError)):
            target.load_state_dict(state)

    def test_state_dict_values_are_copies(self):
        layer = Linear(2, 2)
        state = layer.state_dict()
        key = next(iter(state))
        state[key][:] = 123.0
        assert not np.allclose(layer.state_dict()[key], 123.0)


class TestParameter:
    def test_parameter_requires_grad(self):
        param = Parameter(np.zeros((2, 2)))
        assert param.requires_grad
