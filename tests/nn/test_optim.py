"""Optimiser behaviour: convergence, weight decay, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Adam, Linear, Parameter, SGD, Tensor


def quadratic_loss(param: Parameter) -> Tensor:
    """Simple convex objective (x - 3)^2 summed over all entries."""
    return ((param - 3.0) ** 2).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(4))
        optimizer = SGD([param], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, np.full(4, 3.0), atol=1e-3)

    def test_momentum_accelerates(self):
        def final_distance(momentum: float) -> float:
            param = Parameter(np.zeros(4))
            optimizer = SGD([param], lr=0.01, momentum=momentum)
            for _ in range(50):
                optimizer.zero_grad()
                quadratic_loss(param).backward()
                optimizer.step()
            return float(np.abs(param.data - 3.0).max())

        assert final_distance(0.9) < final_distance(0.0)

    def test_skips_parameters_without_gradient(self):
        used = Parameter(np.zeros(2))
        unused = Parameter(np.ones(2))
        optimizer = SGD([used, unused], lr=0.1)
        quadratic_loss(used).backward()
        optimizer.step()
        np.testing.assert_allclose(unused.data, np.ones(2))

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.5)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.full(3, 10.0))
        optimizer = Adam([param], lr=0.1)
        for _ in range(500):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, np.full(3, 3.0), atol=1e-2)

    def test_weight_decay_shrinks_solution(self):
        def solve(weight_decay: float) -> float:
            param = Parameter(np.zeros(2))
            optimizer = Adam([param], lr=0.05, weight_decay=weight_decay)
            for _ in range(400):
                optimizer.zero_grad()
                quadratic_loss(param).backward()
                optimizer.step()
            return float(param.data.mean())

        assert solve(1.0) < solve(0.0)

    def test_trains_linear_regression(self):
        rng = np.random.default_rng(0)
        true_weight = rng.normal(size=(5, 1))
        inputs = rng.normal(size=(64, 5))
        targets = inputs @ true_weight
        layer = Linear(5, 1, rng=rng)
        optimizer = Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            optimizer.zero_grad()
            prediction = layer(Tensor(inputs))
            loss = ((prediction - Tensor(targets)) ** 2).mean()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(layer.weight.data, true_weight, atol=0.05)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.2, 0.999))


class TestOptimizerValidation:
    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_learning_rate_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_negative_weight_decay_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, weight_decay=-1.0)
