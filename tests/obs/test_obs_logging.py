"""Structured JSON logging: envelope, extras, trace correlation."""

from __future__ import annotations

import io
import json
import logging

from repro.obs.logging import JsonFormatter, configure_logging, get_logger
from repro.obs.tracing import Tracer, use_tracer


def capture_logger(name="repro"):
    stream = io.StringIO()
    logger = configure_logging(level="INFO", stream=stream, logger=name)
    return logger, stream


def rows(stream) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestJsonEnvelope:
    def test_basic_record_shape(self):
        logger, stream = capture_logger()
        logger.info("snapshot swapped")
        (row,) = rows(stream)
        assert row["msg"] == "snapshot swapped"
        assert row["level"] == "INFO"
        assert row["logger"] == "repro"
        assert isinstance(row["ts"], float)

    def test_extra_fields_pass_through(self):
        logger, stream = capture_logger()
        logger.info("swap", extra={"version": "v3", "users": 12})
        (row,) = rows(stream)
        assert row["version"] == "v3"
        assert row["users"] == 12

    def test_unserialisable_extras_fall_back_to_repr(self):
        logger, stream = capture_logger()
        logger.info("x", extra={"obj": object()})
        (row,) = rows(stream)
        assert row["obj"].startswith("<object object")

    def test_exception_text_included(self):
        logger, stream = capture_logger()
        try:
            raise ValueError("boom")
        except ValueError:
            logger.exception("failed")
        (row,) = rows(stream)
        assert row["level"] == "ERROR"
        assert "ValueError: boom" in row["exc"]

    def test_percent_formatting_still_works(self):
        logger, stream = capture_logger()
        logger.info("served %d users", 7)
        (row,) = rows(stream)
        assert row["msg"] == "served 7 users"


class TestTraceCorrelation:
    def test_record_inside_span_carries_trace_ids(self):
        logger, stream = capture_logger()
        with use_tracer(Tracer()) as tracer:
            with tracer.trace("serve.request"):
                with tracer.span("serve.retrieval"):
                    logger.info("searching")
                logger.info("assembling")
        logger.info("outside")
        inner, mid, outside = rows(stream)
        assert inner["span"] == "serve.retrieval"
        assert mid["span"] == "serve.request"
        assert inner["trace_id"] == mid["trace_id"]
        assert inner["span_id"] != mid["span_id"]
        assert "trace_id" not in outside

    def test_log_span_join_key_matches_export(self, tmp_path):
        """The ids a log row carries are the ids the span export carries —
        the join the alert runbook relies on."""
        logger, stream = capture_logger()
        with use_tracer(Tracer()) as tracer:
            with tracer.trace("op"):
                logger.info("inside")
            export = tmp_path / "spans.jsonl"
            tracer.export_jsonl(export)
        (row,) = rows(stream)
        (span_row,) = [json.loads(l) for l in export.read_text().splitlines()]
        assert row["trace_id"] == span_row["trace_id"]
        assert row["span_id"] == span_row["span_id"]


class TestConfiguration:
    def test_reconfigure_replaces_only_own_handler(self):
        logger, _ = capture_logger(name="repro.cfg")
        foreign = logging.NullHandler()
        logger.addHandler(foreign)
        before = len(logger.handlers)
        configure_logging(stream=io.StringIO(), logger="repro.cfg")
        assert len(logger.handlers) == before  # swapped ours, kept theirs
        assert foreign in logger.handlers
        logger.removeHandler(foreign)

    def test_get_logger_normalises_names(self):
        assert get_logger("serve").name == "repro.serve"
        assert get_logger("repro.stream").name == "repro.stream"
        assert get_logger().name == "repro"

    def test_formatter_is_reusable_standalone(self):
        record = logging.LogRecord("x", logging.INFO, __file__, 1, "hi", (), None)
        row = json.loads(JsonFormatter().format(record))
        assert row["msg"] == "hi"
