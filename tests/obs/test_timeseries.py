"""Ring-buffer TSDB: sampling, tiering, windowed queries, persistence."""

from __future__ import annotations

import io

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    MetricsSampler,
    TimeSeriesConfig,
    TimeSeriesDB,
    TSDB_SCHEMA,
)


class TestSampling:
    def test_sample_records_every_series(self, registry, tsdb, clock):
        registry.counter("c", "x").inc(3)
        registry.gauge("g", "x").set(1.5)
        registry.histogram("h", "x").observe(0.02)
        touched = tsdb.sample(registry)
        assert touched == 3
        assert len(tsdb) == 3
        assert tsdb.latest("c") == 3.0
        assert tsdb.latest("g") == 1.5
        assert tsdb.latest("h") == 1  # histogram "latest" is its count

    def test_labeled_series_are_distinct(self, registry, tsdb):
        registry.counter("c", "x", labels={"shard": "a"}).inc(1)
        registry.counter("c", "x", labels={"shard": "b"}).inc(5)
        tsdb.sample(registry)
        assert tsdb.latest("c", labels={"shard": "a"}) == 1.0
        assert tsdb.latest("c", labels={"shard": "b"}) == 5.0

    def test_missing_series_queries_are_safe(self, tsdb):
        assert tsdb.latest("nope", default=7.0) == 7.0
        assert tsdb.rate("nope", 60.0) == 0.0
        assert tsdb.increase("nope", 60.0) == 0.0
        assert tsdb.aggregate("nope", 60.0) is None
        assert tsdb.points("nope", 60.0) == []


class TestWindowedQueries:
    def _fill(self, registry, tsdb, clock, ticks=30, per_tick=5):
        counter = registry.counter("c", "x")
        gauge = registry.gauge("g", "x")
        for i in range(ticks):
            clock.advance(1.0)
            counter.inc(per_tick)
            gauge.set(float(i))
            tsdb.sample(registry)

    def test_rate_and_increase(self, registry, tsdb, clock):
        self._fill(registry, tsdb, clock)
        # 5 increments per second: a 10 s window holds an increase of 50.
        assert tsdb.increase("c", 10.0) == pytest.approx(50.0)
        assert tsdb.rate("c", 10.0) == pytest.approx(5.0)
        # The full-history window is bounded by the earliest retained point.
        assert tsdb.increase("c", 10_000.0) == pytest.approx(5.0 * 29)

    def test_counter_reset_clamps_to_zero(self, registry, tsdb, clock):
        counter = registry.counter("c", "x")
        counter.inc(100)
        clock.advance(1.0)
        tsdb.sample(registry)
        # Simulate a restart: a fresh registry whose counter restarts at 2.
        fresh = MetricsRegistry()
        fresh.counter("c", "x").inc(2)
        clock.advance(1.0)
        tsdb.sample(fresh)
        assert tsdb.increase("c", 60.0) == 0.0
        assert tsdb.rate("c", 60.0) == 0.0

    def test_gauge_aggregate(self, registry, tsdb, clock):
        self._fill(registry, tsdb, clock)
        agg = tsdb.aggregate("g", 10.0)
        assert agg["last"] == 29.0
        assert agg["max"] == 29.0
        assert agg["min"] <= 21.0
        assert 20.0 <= agg["avg"] <= 29.0

    def test_windowed_histogram_quantile_sees_only_the_window(
        self, registry, tsdb, clock
    ):
        hist = registry.histogram("lat", "x")
        # 20 s of fast traffic, then 10 s of slow traffic.
        for _ in range(20):
            clock.advance(1.0)
            for _ in range(10):
                hist.observe(0.001)
            tsdb.sample(registry)
        for _ in range(10):
            clock.advance(1.0)
            for _ in range(10):
                hist.observe(0.5)
            tsdb.sample(registry)
        recent_p50 = tsdb.quantile("lat", 0.5, 8.0)
        overall_p50 = tsdb.quantile("lat", 0.5, 10_000.0)
        assert recent_p50 > 0.1  # the recent window is all-slow
        assert overall_p50 < 0.01  # overall, fast observations dominate

    def test_fraction_over_returns_sample_count(self, registry, tsdb, clock):
        hist = registry.histogram("lat", "x")
        for i in range(10):
            clock.advance(1.0)
            hist.observe(0.001 if i < 5 else 0.5)
            tsdb.sample(registry)
        frac, samples = tsdb.fraction_over("lat", 0.1, 10_000.0)
        # The earliest retained point is the delta baseline, so its single
        # observation is excluded: 9 samples, 5 of them over the threshold.
        assert samples == 9
        assert 0.4 <= frac <= 0.7


class TestTiering:
    def test_old_windows_answer_from_coarser_tiers(self, registry, clock):
        config = TimeSeriesConfig(raw_capacity=10, tier_capacity=600)
        tsdb = TimeSeriesDB(config=config, clock=clock)
        counter = registry.counter("c", "x")
        for _ in range(300):
            clock.advance(1.0)
            counter.inc(2)
            tsdb.sample(registry)
        # Raw tier only holds 10 points, but a 200 s window still answers
        # (from the 10 s tier) with the correct overall rate.
        assert tsdb.rate("c", 200.0) == pytest.approx(2.0, rel=0.2)

    def test_memory_is_bounded(self, registry, clock):
        config = TimeSeriesConfig(raw_capacity=16, tier_capacity=16)
        tsdb = TimeSeriesDB(config=config, clock=clock)
        counter = registry.counter("c", "x")
        for _ in range(5000):
            clock.advance(1.0)
            counter.inc()
            tsdb.sample(registry)
        series = tsdb._series[("c", ())]
        for tier in series.tiers:
            assert len(tier.points) <= 16


class TestPersistence:
    def test_save_load_roundtrip(self, registry, tsdb, clock, tmp_path):
        counter = registry.counter("c", "x")
        hist = registry.histogram("lat", "x")
        for _ in range(20):
            clock.advance(1.0)
            counter.inc(3)
            hist.observe(0.02)
            tsdb.sample(registry)
        path = tmp_path / "tsdb.jsonl"
        written = tsdb.save(path)
        assert written == 2
        loaded = TimeSeriesDB.load(path, clock=clock)
        assert len(loaded) == 2
        assert loaded.latest("c") == tsdb.latest("c")
        assert loaded.increase("c", 10.0) == tsdb.increase("c", 10.0)
        assert loaded.quantile("lat", 0.5, 10.0) == tsdb.quantile("lat", 0.5, 10.0)

    def test_load_rejects_garbage(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            TimeSeriesDB.load(empty)
        headerless = tmp_path / "bad.jsonl"
        headerless.write_text('{"name": "c"}\n')
        with pytest.raises(ValueError, match="meta header"):
            TimeSeriesDB.load(headerless)

    def test_save_stamps_schema(self, registry, tsdb, clock):
        registry.counter("c", "x").inc()
        clock.advance(1.0)
        tsdb.sample(registry)
        buffer = io.StringIO()
        tsdb.save(buffer)
        header = buffer.getvalue().splitlines()[0]
        assert f'"schema": {TSDB_SCHEMA}' in header


class TestSampler:
    def test_manual_ticks_with_fake_clock(self, registry, tsdb, clock):
        registry.counter("c", "x").inc()
        sampler = MetricsSampler(tsdb, registry=registry, clock=clock)
        clock.advance(1.0)
        assert sampler.tick() == 1
        assert sampler.ticks == 1
        assert tsdb.samples_taken == 1

    def test_background_thread_samples_and_stop_is_idempotent(self, registry):
        tsdb = TimeSeriesDB()
        registry.counter("c", "x").inc()
        sampler = MetricsSampler(tsdb, registry=registry, interval=0.01)
        with sampler:
            import time

            deadline = time.time() + 2.0
            while tsdb.samples_taken < 3 and time.time() < deadline:
                time.sleep(0.01)
        assert tsdb.samples_taken >= 3
        before = tsdb.samples_taken
        sampler.stop()  # second stop: no thread, no extra final tick
        assert tsdb.samples_taken == before

    def test_validation(self, tsdb):
        with pytest.raises(ValueError):
            MetricsSampler(tsdb, interval=0.0)
        with pytest.raises(ValueError):
            TimeSeriesConfig(raw_capacity=1)
        with pytest.raises(ValueError):
            TimeSeriesConfig(tier_resolutions=(10.0, 1.0))
