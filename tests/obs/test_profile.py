"""OpProfiler: accumulation, top-K reports, and compiled-step integration."""

from __future__ import annotations

import pytest

from repro.obs.profile import OpProfiler


class TestOpProfiler:
    def test_add_accumulates(self):
        profiler = OpProfiler()
        profiler.add("matmul.fwd", 0.5)
        profiler.add("matmul.fwd", 0.25, calls=3)
        assert profiler.seconds["matmul.fwd"] == pytest.approx(0.75)
        assert profiler.calls["matmul.fwd"] == 4
        assert profiler.total_seconds == pytest.approx(0.75)

    def test_time_context_manager(self):
        profiler = OpProfiler()
        with profiler.time("block"):
            sum(range(1000))
        assert profiler.seconds["block"] > 0.0
        assert profiler.calls["block"] == 1

    def test_time_records_on_exception(self):
        profiler = OpProfiler()
        with pytest.raises(RuntimeError):
            with profiler.time("boom"):
                raise RuntimeError
        assert profiler.calls["boom"] == 1

    def test_reset(self):
        profiler = OpProfiler()
        profiler.add("x", 1.0)
        profiler.reset()
        assert profiler.total_seconds == 0.0
        assert profiler.calls == {}

    def test_report_ranks_and_buckets_the_tail(self):
        profiler = OpProfiler()
        profiler.add("hot", 3.0, calls=10)
        profiler.add("warm", 2.0, calls=5)
        profiler.add("cool", 1.0)
        report = profiler.report(top_k=2)
        assert [row.key for row in report.rows] == ["hot", "warm"]
        assert report.rows[0].share == pytest.approx(0.5)
        assert report.rows[0].per_call == pytest.approx(0.3)
        assert report.other_keys == 1
        assert report.other_seconds == pytest.approx(1.0)
        # Rows + remainder always reconstruct the total.
        assert sum(r.seconds for r in report.rows) + report.other_seconds == pytest.approx(
            report.total_seconds
        )
        assert report.total_calls == 16

    def test_report_validation_and_empty(self):
        profiler = OpProfiler()
        with pytest.raises(ValueError):
            profiler.report(top_k=0)
        report = profiler.report()
        assert report.total_seconds == 0.0
        assert report.rows == ()

    def test_render_and_as_dict(self):
        profiler = OpProfiler()
        profiler.add("matmul.fwd", 0.5, calls=2)
        report = profiler.report(top_k=1)
        rendered = report.render()
        assert "matmul.fwd" in rendered
        assert "op profile:" in rendered
        payload = report.as_dict()
        assert payload["rows"][0]["key"] == "matmul.fwd"
        assert payload["total_calls"] == 2


class TestCompiledStepProfiling:
    def _build_trainer(self, dataset, compile_flag: bool):
        from repro.align import AlignedRecommender
        from repro.models import LightGCN
        from repro.train import Trainer, TrainingConfig

        backbone = LightGCN(dataset, embedding_dim=8, num_layers=1, seed=0)
        model = AlignedRecommender(backbone, None)
        return Trainer(
            model, TrainingConfig(epochs=1, batch_size=256, seed=0, compile=compile_flag)
        )

    def test_profiled_replay_matches_unprofiled(self, tiny_dataset):
        import numpy as np

        plain = self._build_trainer(tiny_dataset, compile_flag=True).train_epoch()
        profiled_trainer = self._build_trainer(tiny_dataset, compile_flag=True)
        assert profiled_trainer.compiled_step is not None
        profiler = profiled_trainer.enable_profiling()
        profiled = profiled_trainer.train_epoch()
        assert np.isclose(plain, profiled, rtol=1e-6)
        # The replay credited per-op keys plus the trainer-side sections.
        assert any(key.endswith(".fwd") for key in profiler.seconds)
        assert any(key.endswith(".bwd") for key in profiler.seconds)
        assert "optimizer.step" in profiler.seconds
        assert "sampler.next" in profiler.seconds

    def test_eager_fallback_is_profiled_too(self, tiny_dataset):
        trainer = self._build_trainer(tiny_dataset, compile_flag=False)
        profiler = trainer.enable_profiling()
        trainer.train_epoch()
        assert "eager.forward" in profiler.seconds
        assert "eager.backward" in profiler.seconds
        assert "optimizer.step" in profiler.seconds

    def test_enable_profiling_reuses_attached_profiler(self, tiny_dataset):
        trainer = self._build_trainer(tiny_dataset, compile_flag=True)
        first = trainer.enable_profiling()
        second = trainer.enable_profiling()
        assert first is second
        assert trainer.compiled_step.profiler is first
