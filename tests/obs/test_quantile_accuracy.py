"""Histogram quantile accuracy against known distributions.

The estimator interpolates geometrically inside exponential buckets, so its
error is bounded by one bucket: for every tested distribution and quantile,
the estimate must land within the bucket that contains the true quantile
(i.e. between that bucket's lower and upper bound).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    fraction_over,
    quantile_from_buckets,
)


def bracketing_bounds(value: float, bounds=DEFAULT_BUCKETS) -> tuple[float, float]:
    """(lower, upper) of the bucket a true value falls into."""
    lower = 0.0
    for upper in bounds:
        if value <= upper:
            return lower, upper
        lower = upper
    return bounds[-1], float("inf")


def filled_histogram(values) -> Histogram:
    hist = Histogram()
    for value in values:
        hist.observe(float(value))
    return hist


DISTRIBUTIONS = {
    "uniform": lambda rng: rng.uniform(0.001, 0.1, size=20_000),
    "lognormal": lambda rng: rng.lognormal(mean=-5.0, sigma=1.0, size=20_000),
    "exponential": lambda rng: rng.exponential(scale=0.01, size=20_000),
    "normal": lambda rng: rng.normal(0.03, 0.008, size=20_000).clip(1e-6),
}


class TestQuantileAccuracy:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_within_one_bucket_of_truth(self, name, q):
        rng = np.random.default_rng(7)
        values = DISTRIBUTIONS[name](rng)
        hist = filled_histogram(values)
        truth = float(np.quantile(values, q))
        lower, upper = bracketing_bounds(truth)
        estimate = hist.quantile(q)
        assert lower <= estimate <= upper, (
            f"{name} p{q * 100:g}: estimate {estimate:.6f} outside "
            f"[{lower:.6f}, {upper:.6f}] containing truth {truth:.6f}"
        )

    def test_geometric_interpolation_beats_bucket_edges(self):
        """Interpolation must do better than snapping to a bucket edge for a
        distribution concentrated inside one bucket."""
        rng = np.random.default_rng(3)
        values = rng.uniform(0.011, 0.024, size=50_000)  # inside (0.01, 0.025]
        hist = filled_histogram(values)
        estimate = hist.quantile(0.5)
        assert 0.011 < estimate < 0.024
        assert estimate != 0.025 and estimate != 0.01

    def test_extremes(self):
        hist = filled_histogram([0.02] * 100)
        lower, upper = bracketing_bounds(0.02)
        # q=0 returns the populated bucket's floor, q=1 stays inside it.
        assert hist.quantile(0.0) == pytest.approx(lower)
        assert lower <= hist.quantile(1.0) <= upper

    def test_bimodal_median_lands_on_a_populated_mode(self):
        """When the true median falls in the empty gap between two modes, the
        estimate snaps to a populated bucket adjacent to the gap — never to
        something outside the data's range."""
        rng = np.random.default_rng(11)
        values = np.concatenate(
            [rng.normal(0.002, 0.0002, 10_000), rng.normal(0.08, 0.005, 10_000)]
        ).clip(1e-6)
        hist = filled_histogram(values)
        estimate = hist.quantile(0.5)
        assert 0.001 <= estimate <= 0.1

    def test_empty_histogram(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_invalid_q_rejected(self):
        with pytest.raises(ValueError):
            filled_histogram([0.01]).quantile(1.5)

    def test_overflow_bucket_clamps_to_top_bound(self):
        hist = filled_histogram([1e6] * 10)
        assert hist.quantile(0.99) == DEFAULT_BUCKETS[-1]


class TestFractionOver:
    def test_split_distribution(self):
        values = [0.001] * 700 + [0.5] * 300
        hist = filled_histogram(values)
        frac = hist.fraction_over(0.1)
        assert frac == pytest.approx(0.3, abs=0.05)

    def test_threshold_above_everything(self):
        assert filled_histogram([0.001] * 100).fraction_over(10.0) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_threshold_below_everything(self):
        assert filled_histogram([0.5] * 100).fraction_over(1e-6) == pytest.approx(
            1.0, abs=0.01
        )

    def test_module_helpers_match_method(self):
        hist = filled_histogram([0.004, 0.02, 0.09, 0.3])
        counts = hist.bucket_counts
        assert quantile_from_buckets(hist.bounds, counts, 0.5) == hist.quantile(0.5)
        assert fraction_over(hist.bounds, counts, 0.05) == hist.fraction_over(0.05)

    def test_empty(self):
        assert Histogram().fraction_over(0.1) == 0.0
