"""Metrics registry: instruments, labeled series, snapshots, null path."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable,
    enable,
    enabled,
    exponential_buckets,
    get_registry,
    use_registry,
)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.dec(3)
        gauge.inc(1)
        assert gauge.value == 8.0

    def test_exponential_buckets_geometric(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    @pytest.mark.parametrize("args", [(0.0, 2.0, 4), (1.0, 1.0, 4), (1.0, 2.0, 0)])
    def test_exponential_buckets_validation(self, args):
        with pytest.raises(ValueError):
            exponential_buckets(*args)

    def test_histogram_counts_and_overflow(self):
        histogram = Histogram(buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.bucket_counts == [1, 1, 1]  # <=1, <=10, +Inf
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(55.5)
        assert histogram.mean == pytest.approx(18.5)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_quantile_interpolates(self):
        histogram = Histogram(buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            histogram.observe(1.5)
        # All mass in the (1, 2] bucket: every quantile lands inside it.
        assert 1.0 <= histogram.quantile(0.5) <= 2.0
        assert histogram.quantile(0.0) >= 0.0
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_quantile_overflow_reports_last_bound(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(100.0)
        assert histogram.quantile(0.99) == 1.0


class TestRegistry:
    def test_get_or_create_returns_same_series(self):
        registry = MetricsRegistry()
        first = registry.counter("requests.total")
        second = registry.counter("requests.total")
        assert first is second

    def test_labels_make_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", labels={"snapshot": "a"})
        b = registry.counter("hits", labels={"snapshot": "b"})
        assert a is not b
        a.inc()
        assert registry.value("hits", labels={"snapshot": "a"}) == 1
        assert registry.value("hits", labels={"snapshot": "b"}) == 0

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("m", labels={"x": 1, "y": 2})
        b = registry.counter("m", labels={"y": 2, "x": 1})
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("queue.depth")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("queue.depth")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("b.count", "help text").inc(2)
        registry.histogram("a.latency", buckets=(1.0, 2.0)).observe(1.5)
        snapshot = registry.snapshot()
        assert [family["name"] for family in snapshot] == ["a.latency", "b.count"]
        histogram = snapshot[0]["series"][0]
        assert histogram["count"] == 1
        # Cumulative buckets with a trailing [None, total] for +Inf.
        assert histogram["buckets"] == [[1.0, 0], [2.0, 1], [None, 1]]
        counter = snapshot[1]["series"][0]
        assert counter == {"labels": {}, "value": 2.0}
        assert snapshot[1]["help"] == "help text"

    def test_value_and_get_for_missing_series(self):
        registry = MetricsRegistry()
        assert registry.get("nope") is None
        assert registry.value("nope", default=7.0) == 7.0

    def test_len_counts_series(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.counter("b", labels={"x": 1})
        registry.counter("b", labels={"x": 2})
        assert len(registry) == 3


class TestGlobalState:
    def test_disabled_returns_shared_noops(self):
        disable()
        try:
            registry = get_registry()
            assert isinstance(registry, NullRegistry)
            assert registry.counter("a") is registry.counter("b")
            registry.counter("a").inc()
            registry.histogram("h").observe(1.0)
            assert registry.snapshot() == []
            assert not enabled()
        finally:
            disable()

    def test_enable_accumulates_into_one_registry(self):
        disable()
        try:
            first = enable()
            second = enable()
            assert first is second
            assert enabled()
        finally:
            disable()

    def test_use_registry_restores_previous_state(self):
        disable()
        with use_registry() as registry:
            registry.counter("inner").inc()
            assert get_registry() is registry
        assert isinstance(get_registry(), NullRegistry)
