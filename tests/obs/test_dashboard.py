"""Dashboard rendering, doctor exit codes, and bench-regression checks.

Also holds the sync test keeping ``repro.obs.health.bench_regressions`` and
``benchmarks/record.py::check_regression`` in agreement (the logic is
intentionally duplicated so the doctor works without importing the
benchmarks directory).
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.obs import use_registry
from repro.obs.dashboard import (
    budget_bar,
    render_dashboard,
    render_offline,
    run_dashboard,
    sparkline,
)
from repro.obs.health import (
    HealthEngine,
    bench_regressions,
    doctor_from_dir,
    doctor_verdict,
)
from repro.obs.slo import SLO

REPO_ROOT = Path(__file__).resolve().parents[2]


def load_record_module():
    spec = importlib.util.spec_from_file_location(
        "bench_record", REPO_ROOT / "benchmarks" / "record.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_record", module)
    spec.loader.exec_module(module)
    return module


def tight_slo(**overrides) -> SLO:
    base = dict(
        name="lat",
        kind="latency",
        metric="lat_seconds",
        objective=0.050,
        fast_window=10.0,
        slow_window=30.0,
        budget_window=120.0,
        min_samples=5,
        category="latency",
    )
    base.update(overrides)
    return SLO(**base)


def driven_engine(registry, clock, latency, seconds=40, tmp_dir=None):
    engine = HealthEngine(
        registry=registry, slos=[tight_slo()], clock=clock, log_dir=tmp_dir
    )
    hist = registry.histogram("lat_seconds", "x")
    for _ in range(seconds):
        clock.advance(1.0)
        for _ in range(5):
            hist.observe(latency)
        engine.tick()
    return engine


class TestPrimitives:
    def test_sparkline_shape_and_scaling(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert len(line) == 8
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_resamples_to_width(self):
        assert len(sparkline(range(1000), width=40)) == 40

    def test_sparkline_flat_and_empty(self):
        assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"
        assert sparkline([]) == ""

    def test_budget_bar_fill_levels(self):
        assert budget_bar(1.0) == "[" + "█" * 20 + "]"
        assert budget_bar(0.0) == "[" + "░" * 20 + "]"
        half = budget_bar(0.5)
        assert half.count("█") == 10 and half.count("░") == 10
        assert budget_bar(7.5) == budget_bar(1.0)  # clamped
        assert budget_bar(-2.0) == budget_bar(0.0)


class TestRenderDashboard:
    def test_healthy_frame(self, clock):
        with use_registry() as registry:
            engine = driven_engine(registry, clock, latency=0.004)
            frame = render_dashboard(engine)
        assert "1 SLOs, 0 firing" in frame
        assert "lat_seconds p99" in frame
        assert "SLO lat" in frame
        assert "ok" in frame and "BREACHING" not in frame
        assert "no firing alerts" in frame
        assert any(ch in frame for ch in "▁▂▃▄▅▆▇█")

    def test_breaching_frame_shows_alert_panel(self, clock):
        with use_registry() as registry:
            engine = driven_engine(registry, clock, latency=0.2)
            frame = render_dashboard(engine)
        assert "BREACHING" in frame
        assert "ALERT slo:lat FIRING" in frame
        assert "1 firing" in frame
        assert "\x1b[31m" not in frame  # color off by default

    def test_color_codes_only_when_requested(self, clock):
        with use_registry() as registry:
            engine = driven_engine(registry, clock, latency=0.2)
            assert "\x1b[31m" in render_dashboard(engine, color=True)

    def test_run_dashboard_draws_requested_frames(self, clock):
        import io

        with use_registry() as registry:
            engine = driven_engine(registry, clock, latency=0.004)
            stream = io.StringIO()
            frames = run_dashboard(
                engine, refresh=0.0, iterations=2, stream=stream, color=False
            )
        assert frames == 2
        assert stream.getvalue().count("repro health") == 2


class TestRenderOffline:
    def test_offline_frame_from_saved_run(self, clock, tmp_path):
        with use_registry() as registry:
            engine = driven_engine(registry, clock, latency=0.2, tmp_dir=tmp_path)
            engine.save()
        frame = render_offline(tmp_path)
        assert "offline" in frame
        assert "lat_seconds" in frame
        assert "SLO lat" in frame
        assert "ALERT slo:lat FIRING" in frame

    def test_offline_empty_directory(self, tmp_path):
        frame = render_offline(tmp_path)
        assert "0 series" in frame


class TestDoctorVerdict:
    def test_exit_codes_across_health_states(self, clock):
        with use_registry() as registry:
            engine = driven_engine(registry, clock, latency=0.004)
            report = doctor_verdict(engine.last_statuses, engine.alerts.alerts())
            assert (report.code, report.verdict) == (0, "healthy")
        with use_registry() as registry:
            clock.advance(100.0)
            engine = driven_engine(registry, clock, latency=0.2)
            report = doctor_verdict(engine.last_statuses, engine.alerts.alerts())
            assert (report.code, report.verdict) == (2, "firing")
            assert "exit 2" in report.render()
            assert any("breaching" in note for note in report.notes)

    def test_degraded_from_fast_spike(self, clock):
        with use_registry() as registry:
            engine = HealthEngine(
                registry=registry,
                slos=[tight_slo(slow_window=2000.0, budget_window=4000.0)],
                clock=clock,
                for_duration=60.0,  # alert still pending: degraded, not firing
            )
            hist = registry.histogram("lat_seconds", "x")
            for _ in range(600):
                clock.advance(1.0)
                for _ in range(5):
                    hist.observe(0.004)
                engine.tick()
            for _ in range(8):
                clock.advance(1.0)
                for _ in range(5):
                    hist.observe(0.2)
                engine.tick()
            report = doctor_verdict(engine.last_statuses, engine.alerts.alerts())
        assert (report.code, report.verdict) == (1, "degraded")

    def test_bench_warning_alone_is_degraded(self):
        report = doctor_verdict(
            [], [], bench_warnings=[{"file": "BENCH_x.json", "metric": "m", "detail": "d"}]
        )
        assert report.code == 1
        assert "BENCH_x.json" in report.render()


class TestDoctorFromDir:
    def test_saved_firing_run_exits_2(self, clock, tmp_path):
        with use_registry() as registry:
            engine = driven_engine(registry, clock, latency=0.2, tmp_dir=tmp_path)
            engine.save()
        report = doctor_from_dir(tmp_path)
        assert report.code == 2
        assert any("BREACHING" in note for note in report.notes)

    def test_saved_healthy_run_exits_0(self, clock, tmp_path):
        with use_registry() as registry:
            engine = driven_engine(registry, clock, latency=0.004, tmp_dir=tmp_path)
            engine.save()
        assert doctor_from_dir(tmp_path).code == 0

    def test_crashed_run_falls_back_to_alert_log(self, clock, tmp_path):
        with use_registry() as registry:
            driven_engine(registry, clock, latency=0.2, tmp_dir=tmp_path)
            # No save(): only the live alerts.jsonl exists.
        assert not (tmp_path / "slos.json").exists()
        assert doctor_from_dir(tmp_path).code == 2

    def test_empty_directory_is_healthy(self, tmp_path):
        assert doctor_from_dir(tmp_path).code == 0


def write_history(path, metric, values, warning_rows=()):
    rows = [{"metric": metric, "value": v, "schema": 1} for v in values]
    rows.extend(warning_rows)
    path.write_text(json.dumps(rows))


class TestBenchRegressions:
    def test_latency_jump_flagged(self, tmp_path):
        write_history(
            tmp_path / "BENCH_serve.json",
            "serve_latency_p50_ms",
            [10.0, 10.2, 9.9, 10.1, 14.0],
        )
        found = bench_regressions(tmp_path, tolerance=0.15)
        assert len(found) == 1
        assert found[0]["metric"] == "serve_latency_p50_ms"
        assert found[0]["source"] == "trend"

    def test_throughput_drop_flagged_higher_is_better(self, tmp_path):
        write_history(
            tmp_path / "BENCH_serve.json",
            "serve_throughput_qps",
            [100.0, 101.0, 99.0, 100.0, 70.0],
        )
        assert len(bench_regressions(tmp_path, tolerance=0.15)) == 1

    def test_improvement_not_flagged(self, tmp_path):
        write_history(
            tmp_path / "BENCH_serve.json",
            "serve_latency_p50_ms",
            [10.0, 10.2, 9.9, 10.1, 7.0],
        )
        assert bench_regressions(tmp_path, tolerance=0.15) == []

    def test_short_history_abstains(self, tmp_path):
        write_history(tmp_path / "BENCH_x.json", "serve_latency_p50_ms", [10.0, 20.0])
        assert bench_regressions(tmp_path, tolerance=0.15) == []

    def test_recorded_warning_rows_surface(self, tmp_path):
        write_history(
            tmp_path / "BENCH_x.json",
            "m_seconds",
            [1.0, 1.0],
            warning_rows=[
                {
                    "kind": "regression_warning",
                    "metric": "m_seconds",
                    "detail": "recorded at bench time",
                }
            ],
        )
        found = bench_regressions(tmp_path)
        assert [w["source"] for w in found] == ["recorded"]

    def test_context_rows_are_never_trend_checked(self, tmp_path):
        # Raw machine-speed rows (kind="context") explain a headline ratio
        # but track the CI box, not the code: a slower machine must not
        # degrade the doctor's verdict.
        rows = [
            {"metric": "ratio_disabled_qps", "value": v, "kind": "context", "schema": 1}
            for v in [40000.0, 41000.0, 39000.0, 40500.0, 20000.0]
        ]
        (tmp_path / "BENCH_x.json").write_text(json.dumps(rows))
        assert bench_regressions(tmp_path, tolerance=0.15) == []

    def test_superseded_warning_rows_do_not_surface(self, tmp_path):
        # A warning followed by a newer healthy measurement of the same
        # metric is history, not state: the checkout recovered, the doctor
        # must stop flagging it.
        rows = [
            {"metric": "m_seconds", "value": 1.0, "schema": 1},
            {
                "kind": "regression_warning",
                "metric": "m_seconds",
                "detail": "recorded at bench time",
            },
            {"metric": "m_seconds", "value": 1.01, "schema": 1},
        ]
        (tmp_path / "BENCH_x.json").write_text(json.dumps(rows))
        assert bench_regressions(tmp_path) == []

    def test_other_metrics_do_not_supersede_a_warning(self, tmp_path):
        rows = [
            {
                "kind": "regression_warning",
                "metric": "m_seconds",
                "detail": "recorded at bench time",
            },
            {"metric": "other_seconds", "value": 1.0, "schema": 1},
        ]
        (tmp_path / "BENCH_x.json").write_text(json.dumps(rows))
        found = bench_regressions(tmp_path)
        assert [w["metric"] for w in found] == ["m_seconds"]

    def test_missing_directory_and_garbage_files(self, tmp_path):
        assert bench_regressions(tmp_path / "nope") == []
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        (tmp_path / "BENCH_dict.json").write_text('{"metric": "x"}')
        assert bench_regressions(tmp_path) == []


class TestSyncWithRecordModule:
    """``bench_regressions`` (doctor) and ``check_regression`` (bench runs)
    must agree — they are deliberate duplicates of one policy."""

    HISTORIES = [
        ("serve_latency_p50_ms", [10.0, 10.2, 9.9, 10.1, 14.0], True),
        ("serve_latency_p50_ms", [10.0, 10.2, 9.9, 10.1, 10.3], False),
        ("serve_throughput_qps", [100.0, 99.0, 101.0, 100.0, 70.0], True),
        ("serve_throughput_qps", [100.0, 99.0, 101.0, 100.0, 130.0], False),
        ("obs_overhead_ratio_p50", [1.01, 1.02, 1.0, 1.01, 1.4], True),
        ("ndcg_at_20", [0.05, 0.051, 0.049, 0.05, 0.02], True),
    ]

    @pytest.mark.parametrize("metric, values, expect", HISTORIES)
    def test_same_verdict_on_same_history(self, tmp_path, metric, values, expect):
        record = load_record_module()
        history = [{"metric": metric, "value": v, "schema": 1} for v in values]
        from_record = record.check_regression(history, metric, tolerance=0.15)
        write_history(tmp_path / "BENCH_sync.json", metric, values)
        from_health = bench_regressions(tmp_path, tolerance=0.15)
        assert (from_record is not None) == expect
        assert bool(from_health) == expect
        if expect:
            assert from_health[0]["metric"] == metric
            assert from_record["metric"] == metric

    def test_direction_inference_matches(self):
        record = load_record_module()
        from repro.obs.health import _bench_direction

        for metric in [
            "serve_latency_p50_ms",
            "build_seconds",
            "obs_overhead_ratio_p50",
            "wall_time_s",
            "serve_throughput_qps",
            "ndcg_at_20",
            "recall_at_20",
            "epoch_speedup_eager_ms",
            "serving_overhead_ratio_disabled_qps",
        ]:
            assert record.infer_direction(metric) == _bench_direction(metric), metric

    def test_suffix_beats_inherited_parent_tokens(self):
        record = load_record_module()
        from repro.obs.health import _bench_direction

        # Compound metric names inherit their parent's tokens; the unit
        # suffix is the ground truth for which way is better.
        for metric, expect in [
            ("epoch_speedup_eager_ms", "lower"),
            ("epoch_speedup_compiled_ms", "lower"),
            ("serving_overhead_ratio_disabled_qps", "higher"),
            ("shadow_p50_overhead_ratio_bare_p50_ms", "lower"),
            ("events_per_s", "higher"),
        ]:
            assert record.infer_direction(metric) == expect, metric
            assert _bench_direction(metric) == expect, metric
