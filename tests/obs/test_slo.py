"""SLO engine: burn rates, multi-window breach logic, budget accounting."""

from __future__ import annotations

import pytest

from repro.obs.slo import SLO, SLOEngine, default_serving_slos


def latency_slo(**overrides) -> SLO:
    base = dict(
        name="lat",
        kind="latency",
        metric="lat_seconds",
        objective=0.050,
        quantile=0.99,
        fast_window=10.0,
        slow_window=30.0,
        budget_window=120.0,
        min_samples=5,
    )
    base.update(overrides)
    return SLO(**base)


class TestDeclaration:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            latency_slo(kind="weird")
        with pytest.raises(ValueError, match="quantile"):
            latency_slo(quantile=1.0)
        with pytest.raises(ValueError, match="total_metric"):
            SLO(name="r", kind="ratio", metric="bad", objective=0.02)
        with pytest.raises(ValueError, match="fraction"):
            SLO(name="r", kind="ratio", metric="b", total_metric="t", objective=2.0)
        with pytest.raises(ValueError, match="fast_window"):
            latency_slo(fast_window=60.0, slow_window=30.0)

    def test_budget(self):
        assert latency_slo(quantile=0.99).budget == pytest.approx(0.01)
        ratio = SLO(name="r", kind="ratio", metric="b", total_metric="t", objective=0.02)
        assert ratio.budget == 0.02

    def test_target_strings(self):
        assert "p99 < 50ms" in latency_slo().target()
        ratio = SLO(
            name="r", kind="ratio", metric="bad", total_metric="total", objective=0.02
        )
        assert "< 2.0%" in ratio.target()

    def test_duplicate_names_rejected(self, tsdb):
        engine = SLOEngine(tsdb, [latency_slo()])
        with pytest.raises(ValueError, match="duplicate"):
            engine.add(latency_slo())

    def test_default_serving_slos_cover_latency_and_quality(self):
        slos = default_serving_slos()
        assert {s.category for s in slos} == {"latency", "quality"}
        assert any(s.metric == "serve.request.latency_seconds" for s in slos)


def drive(registry, tsdb, clock, hist, seconds, latency, per_second=5):
    for _ in range(seconds):
        clock.advance(1.0)
        for _ in range(per_second):
            hist.observe(latency)
        tsdb.sample(registry)


class TestBurnRates:
    def test_healthy_traffic_does_not_burn(self, registry, tsdb, clock):
        hist = registry.histogram("lat_seconds", "x")
        engine = SLOEngine(tsdb, [latency_slo()], clock=clock)
        drive(registry, tsdb, clock, hist, 40, latency=0.004)
        status = engine.evaluate()[0]
        assert status.fast_burn < 1.0
        assert not status.breaching and not status.degraded
        assert status.healthy
        assert status.budget_remaining > 0.9

    def test_sustained_breach_burns_both_windows(self, registry, tsdb, clock):
        hist = registry.histogram("lat_seconds", "x")
        engine = SLOEngine(tsdb, [latency_slo()], clock=clock)
        drive(registry, tsdb, clock, hist, 40, latency=0.2)
        status = engine.evaluate()[0]
        assert status.fast_burn >= 2.0
        assert status.slow_burn >= 2.0
        assert status.breaching
        assert status.budget_remaining == 0.0

    def test_fast_spike_is_degraded_not_breaching(self, registry, tsdb, clock):
        hist = registry.histogram("lat_seconds", "x")
        # Slow window long enough that a short spike cannot move it.
        slo = latency_slo(slow_window=2000.0, budget_window=4000.0)
        engine = SLOEngine(tsdb, [slo], clock=clock)
        drive(registry, tsdb, clock, hist, 600, latency=0.004)
        drive(registry, tsdb, clock, hist, 8, latency=0.2)
        status = engine.evaluate()[0]
        assert status.fast_burn >= 2.0
        assert status.slow_burn < 2.0
        assert status.degraded and not status.breaching

    def test_min_samples_gates_confidence(self, registry, tsdb, clock):
        hist = registry.histogram("lat_seconds", "x")
        engine = SLOEngine(tsdb, [latency_slo(min_samples=100)], clock=clock)
        drive(registry, tsdb, clock, hist, 40, latency=0.2, per_second=2)
        status = engine.evaluate()[0]
        # Burning hard, but too few samples in the fast window to page on.
        assert status.fast_burn >= 2.0
        assert not status.breaching and not status.degraded

    def test_no_traffic_is_healthy(self, tsdb, clock):
        engine = SLOEngine(tsdb, [latency_slo()], clock=clock)
        status = engine.evaluate()[0]
        assert status.healthy
        assert status.fast_samples == 0


class TestRatioSLO:
    def ratio_slo(self) -> SLO:
        return SLO(
            name="fallbacks",
            kind="ratio",
            metric="bad_total",
            total_metric="all_total",
            objective=0.02,
            fast_window=10.0,
            slow_window=30.0,
            budget_window=120.0,
            min_samples=5,
            category="quality",
        )

    def test_ratio_burn(self, registry, tsdb, clock):
        bad = registry.counter("bad_total", "x")
        total = registry.counter("all_total", "x")
        engine = SLOEngine(tsdb, [self.ratio_slo()], clock=clock)
        for second in range(40):
            clock.advance(1.0)
            total.inc(10)
            if second >= 20:
                bad.inc(2)  # 20% bad against a 2% objective: burn 10
            tsdb.sample(registry)
        status = engine.evaluate()[0]
        assert status.fast_burn == pytest.approx(10.0, rel=0.15)
        assert status.breaching

    def test_ratio_with_no_traffic_is_healthy(self, registry, tsdb, clock):
        engine = SLOEngine(tsdb, [self.ratio_slo()], clock=clock)
        clock.advance(1.0)
        tsdb.sample(registry)
        status = engine.evaluate()[0]
        assert status.healthy
        assert status.fast_burn == 0.0

    def test_status_as_dict_is_json_ready(self, registry, tsdb, clock):
        import json

        engine = SLOEngine(tsdb, [self.ratio_slo()], clock=clock)
        row = engine.evaluate()[0].as_dict()
        json.dumps(row)
        assert row["slo"] == "fallbacks"
        assert row["category"] == "quality"
