"""Exporters: Prometheus text rendering, JSONL dumps, the periodic thread."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.export import (
    METRICS_DUMP_SCHEMA,
    PeriodicExporter,
    read_metrics_jsonl,
    render_prometheus,
    write_metrics_jsonl,
)
from repro.obs.metrics import MetricsRegistry, use_registry


@pytest.fixture()
def registry():
    registry = MetricsRegistry()
    registry.counter("serve.queries.total", "queries answered").inc(5)
    registry.gauge("breaker.state").set(1)
    registry.counter("serve.cache.hits.total", labels={"snapshot": "ab12"}).inc(3)
    histogram = registry.histogram("serve.latency_seconds", buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(2.0)
    return registry


class TestPrometheus:
    def test_render_structure(self, registry):
        text = render_prometheus(registry.snapshot())
        assert text.endswith("\n")
        assert "# HELP serve_queries_total queries answered" in text
        assert "# TYPE serve_queries_total counter" in text
        assert "serve_queries_total 5" in text
        assert "breaker_state 1" in text

    def test_labels_rendered_sorted_and_escaped(self, registry):
        registry.counter("m", labels={"b": 'say "hi"', "a": 1}).inc()
        text = render_prometheus(registry.snapshot())
        assert 'm{a="1",b="say \\"hi\\""} 1' in text

    def test_histogram_expansion(self, registry):
        text = render_prometheus(registry.snapshot())
        assert 'serve_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'serve_latency_seconds_bucket{le="1"} 1' in text
        assert 'serve_latency_seconds_bucket{le="+Inf"} 2' in text
        assert "serve_latency_seconds_count 2" in text
        assert "serve_latency_seconds_sum 2.05" in text

    def test_leading_digit_names_prefixed(self):
        registry = MetricsRegistry()
        registry.counter("0weird").inc()
        assert "_0weird 1" in render_prometheus(registry.snapshot())


class TestJsonl:
    def test_write_read_roundtrip(self, registry, tmp_path):
        path = tmp_path / "metrics.jsonl"
        families_written = write_metrics_jsonl(path, registry)
        header, families = read_metrics_jsonl(path)
        assert header["schema"] == METRICS_DUMP_SCHEMA
        assert header["kind"] == "meta"
        assert len(families) == families_written == 4
        assert families == registry.snapshot()

    def test_write_to_file_object_and_active_registry(self, registry):
        buffer = io.StringIO()
        with use_registry(registry):
            write_metrics_jsonl(buffer)
        lines = buffer.getvalue().splitlines()
        assert json.loads(lines[0])["kind"] == "meta"
        assert len(lines) == 5

    def test_read_rejects_empty_dump(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_metrics_jsonl(path)

    def test_read_rejects_missing_header(self, tmp_path):
        path = tmp_path / "headerless.jsonl"
        path.write_text('{"name": "x", "kind": "counter", "series": []}\n')
        with pytest.raises(ValueError, match="meta header"):
            read_metrics_jsonl(path)


class TestPeriodicExporter:
    def test_stop_writes_final_dump(self, registry, tmp_path):
        path = tmp_path / "metrics.jsonl"
        exporter = PeriodicExporter(path, interval=60.0, registry=registry)
        exporter.start()
        exporter.stop()
        assert exporter.exports >= 1
        header, families = read_metrics_jsonl(path)
        assert len(families) == 4

    def test_context_manager_and_prometheus_format(self, registry, tmp_path):
        path = tmp_path / "metrics.prom"
        with PeriodicExporter(path, interval=60.0, fmt="prometheus", registry=registry):
            pass
        assert "serve_queries_total 5" in path.read_text()

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            PeriodicExporter(tmp_path / "x", interval=0.0)
        with pytest.raises(ValueError):
            PeriodicExporter(tmp_path / "x", fmt="xml")

    def test_double_start_rejected(self, registry, tmp_path):
        exporter = PeriodicExporter(tmp_path / "m.jsonl", interval=60.0, registry=registry)
        exporter.start()
        try:
            with pytest.raises(RuntimeError):
                exporter.start()
        finally:
            exporter.stop()
