"""Alert lifecycle: damping, episodes, restart dedupe, and the action bus."""

from __future__ import annotations

import json

import pytest

from repro.obs.alerts import (
    FIRING,
    INACTIVE,
    PENDING,
    RESOLVED,
    ActionBus,
    Alert,
    AlertManager,
    AlertRule,
    breaker_subscriber,
    retrain_subscriber,
)
from repro.obs.slo import SLOEngine
from repro.obs.timeseries import TimeSeriesDB
from repro.reliability.breaker import CircuitBreaker


class Condition:
    """A rule predicate the test flips on and off."""

    def __init__(self) -> None:
        self.active = False

    def __call__(self, tsdb, now) -> bool:
        return self.active


def manager_with(condition, clock, for_duration=2.0, resolve_duration=3.0, **kwargs):
    rule = AlertRule(
        name="cond",
        predicate=condition,
        category="health",
        severity="warn",
        for_duration=for_duration,
        resolve_duration=resolve_duration,
    )
    return AlertManager(engine=None, rules=[rule], clock=clock, **kwargs)


class TestStateMachine:
    def test_for_duration_gates_firing(self, clock):
        condition = Condition()
        manager = manager_with(condition, clock)
        condition.active = True
        manager.evaluate()
        alert = manager.alerts()[0]
        assert alert.state == PENDING  # active, but not for long enough
        clock.advance(1.0)
        manager.evaluate()
        assert manager.alerts()[0].state == PENDING
        clock.advance(1.5)
        manager.evaluate()
        alert = manager.alerts()[0]
        assert alert.state == FIRING
        assert alert.episode == 1

    def test_blip_shorter_than_for_duration_never_fires(self, clock):
        condition = Condition()
        manager = manager_with(condition, clock)
        condition.active = True
        manager.evaluate()
        condition.active = False
        clock.advance(1.0)
        manager.evaluate()
        assert manager.alerts()[0].state == INACTIVE
        assert manager.transitions == 0

    def test_resolve_duration_gates_resolution(self, clock):
        condition = Condition()
        manager = manager_with(condition, clock, for_duration=0.0)
        condition.active = True
        manager.evaluate()
        assert manager.alerts()[0].state == FIRING
        condition.active = False
        clock.advance(1.0)
        manager.evaluate()
        assert manager.alerts()[0].state == FIRING  # still inside damping
        clock.advance(3.0)
        manager.evaluate()
        assert manager.alerts()[0].state == RESOLVED

    def test_flap_damping_under_oscillation(self, clock):
        """A signal oscillating faster than resolve_duration yields ONE
        episode, not a page storm."""
        condition = Condition()
        manager = manager_with(condition, clock, for_duration=0.0, resolve_duration=5.0)
        events = []
        manager.bus.subscribe(lambda event, alert: events.append(event))
        for _ in range(20):  # flip every second for 20 s
            condition.active = not condition.active
            clock.advance(1.0)
            manager.evaluate()
        alert = manager.alerts()[0]
        assert alert.episode == 1
        assert events == ["firing"]
        # Once the signal stays clear past the damping window, it resolves.
        condition.active = False
        clock.advance(6.0)
        manager.evaluate()
        assert manager.alerts()[0].state == RESOLVED
        assert events == ["firing", "resolved"]

    def test_refire_after_resolution_is_a_new_episode(self, clock):
        condition = Condition()
        manager = manager_with(condition, clock, for_duration=0.0, resolve_duration=1.0)
        condition.active = True
        manager.evaluate()
        condition.active = False
        clock.advance(1.0)
        manager.evaluate()  # first clear observation starts the damping timer
        clock.advance(2.0)
        manager.evaluate()  # stayed clear past resolve_duration: resolved
        assert manager.alerts()[0].state == RESOLVED
        condition.active = True
        clock.advance(1.0)
        manager.evaluate()
        alert = manager.alerts()[0]
        assert alert.state == FIRING
        assert alert.episode == 2


class TestActionBus:
    def test_category_routing(self):
        bus = ActionBus()
        latency_events, all_events = [], []
        bus.subscribe(lambda e, a: latency_events.append(a.name), categories=("latency",))
        bus.subscribe(lambda e, a: all_events.append(a.name))
        bus.publish("firing", Alert(name="lat", category="latency", severity="page"))
        bus.publish("firing", Alert(name="qual", category="quality", severity="warn"))
        assert latency_events == ["lat"]
        assert all_events == ["lat", "qual"]

    def test_failing_subscriber_does_not_block_delivery(self):
        bus = ActionBus()
        received = []

        def broken(event, alert):
            raise RuntimeError("subscriber bug")

        bus.subscribe(broken)
        bus.subscribe(lambda e, a: received.append(a.name))
        delivered = bus.publish("firing", Alert(name="x", category="health", severity="warn"))
        assert delivered == 1
        assert received == ["x"]
        assert bus.errors == 1


class TestAlertLogAndRestartDedupe:
    def test_transitions_are_logged_as_jsonl(self, clock, tmp_path):
        log = tmp_path / "alerts.jsonl"
        condition = Condition()
        manager = manager_with(
            condition, clock, for_duration=0.0, resolve_duration=1.0, log_path=log
        )
        condition.active = True
        manager.evaluate()
        condition.active = False
        clock.advance(1.0)
        manager.evaluate()
        clock.advance(2.0)
        manager.evaluate()
        rows = [json.loads(line) for line in log.read_text().splitlines()]
        assert [row["event"] for row in rows] == ["firing", "resolved"]
        assert all(row["name"] == "rule:cond" for row in rows)

    def test_restart_does_not_refire_inflight_episode(self, clock, tmp_path):
        """An alert firing at shutdown is still firing after replay — and its
        firing transition is NOT re-published (dedupe across restart)."""
        log = tmp_path / "alerts.jsonl"
        condition = Condition()
        manager = manager_with(condition, clock, for_duration=0.0, log_path=log)
        condition.active = True
        manager.evaluate()
        assert manager.alerts()[0].state == FIRING

        # "Restart": a fresh manager over the same log (TSDB reload scenario).
        events = []
        reborn = manager_with(condition, clock, for_duration=0.0, log_path=log)
        reborn.bus.subscribe(lambda event, alert: events.append(event))
        alert = reborn.alerts()[0]
        assert alert.state == FIRING
        assert alert.episode == 1
        # Condition still bad: evaluating again publishes nothing new.
        clock.advance(1.0)
        reborn.evaluate()
        assert events == []
        assert reborn.alerts()[0].episode == 1
        # Eventual recovery publishes the resolution exactly once.
        condition.active = False
        clock.advance(1.0)
        reborn.evaluate()
        clock.advance(5.0)
        reborn.evaluate()
        assert events == ["resolved"]

    def test_restart_continues_episode_numbering(self, clock, tmp_path):
        log = tmp_path / "alerts.jsonl"
        condition = Condition()
        manager = manager_with(
            condition, clock, for_duration=0.0, resolve_duration=1.0, log_path=log
        )
        for _ in range(3):  # three full episodes
            condition.active = True
            clock.advance(1.0)
            manager.evaluate()
            condition.active = False
            clock.advance(1.0)
            manager.evaluate()
            clock.advance(2.0)
            manager.evaluate()
        reborn = manager_with(condition, clock, for_duration=0.0, log_path=log)
        assert reborn.alerts()[0].episode == 3
        condition.active = True
        clock.advance(1.0)
        reborn.evaluate()
        assert reborn.alerts()[0].episode == 4

    def test_torn_log_tail_is_tolerated(self, clock, tmp_path):
        log = tmp_path / "alerts.jsonl"
        condition = Condition()
        manager = manager_with(condition, clock, for_duration=0.0, log_path=log)
        condition.active = True
        manager.evaluate()
        with open(log, "a") as handle:
            handle.write('{"name": "rule:cond", "event": "reso')  # torn write
        reborn = manager_with(condition, clock, for_duration=0.0, log_path=log)
        assert reborn.alerts()[0].state == FIRING


class TestSubscribers:
    class StubOrchestrator:
        def __init__(self) -> None:
            self.signals = []

        def submit(self, signal) -> None:
            self.signals.append(signal)

    def test_retrain_fires_exactly_once_per_episode(self, clock):
        condition = Condition()
        manager = manager_with(
            condition,
            clock,
            for_duration=0.0,
            resolve_duration=1.0,
        )
        orchestrator = self.StubOrchestrator()
        manager.bus.subscribe(retrain_subscriber(orchestrator), categories=("health",))
        condition.active = True
        for _ in range(5):  # stays bad for 5 evaluations: one episode
            clock.advance(1.0)
            manager.evaluate()
        assert len(orchestrator.signals) == 1
        signal = orchestrator.signals[0]
        assert signal.reasons == ("alert:rule:cond#e1",)
        # Second episode queues a second retrain.
        condition.active = False
        clock.advance(1.0)
        manager.evaluate()
        clock.advance(2.0)
        manager.evaluate()
        condition.active = True
        clock.advance(1.0)
        manager.evaluate()
        assert len(orchestrator.signals) == 2
        assert orchestrator.signals[1].reasons == ("alert:rule:cond#e2",)

    def test_retrain_subscriber_dedupes_replayed_transitions(self):
        orchestrator = self.StubOrchestrator()
        handler = retrain_subscriber(orchestrator)
        alert = Alert(name="a", category="quality", severity="warn", episode=1)
        handler("firing", alert)
        handler("firing", alert)  # duplicated delivery
        handler("resolved", alert)
        assert len(orchestrator.signals) == 1

    def test_breaker_subscriber_pre_opens_and_recovers(self):
        breaker = CircuitBreaker()
        handler = breaker_subscriber(breaker)
        alert = Alert(name="lat", category="latency", severity="page", episode=1)
        assert breaker.allow()
        handler("firing", alert)
        assert not breaker.allow()  # pre-opened: load is shed
        handler("resolved", alert)
        assert breaker.allow()

    def test_slo_driven_alert_carries_burn_context(self, registry, tsdb, clock):
        from repro.obs.slo import SLO

        slo = SLO(
            name="lat",
            kind="latency",
            metric="lat_seconds",
            objective=0.050,
            fast_window=10.0,
            slow_window=30.0,
            budget_window=120.0,
            min_samples=5,
        )
        hist = registry.histogram("lat_seconds", "x")
        engine = SLOEngine(tsdb, [slo], clock=clock)
        manager = AlertManager(engine=engine, clock=clock, default_for_duration=0.0)
        for _ in range(40):
            clock.advance(1.0)
            for _ in range(5):
                hist.observe(0.2)
            tsdb.sample(registry)
        manager.evaluate()
        alert = manager.firing()[0]
        assert alert.name == "slo:lat"
        assert alert.context["fast_burn"] >= 2.0
