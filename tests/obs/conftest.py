"""Shared fixtures for the observability test suite."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesDB


class FakeClock:
    """Injectable clock: every time-window test advances it explicitly, so
    no test sleeps to make wall time pass."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


@pytest.fixture
def clock():
    return FakeClock(1000.0)


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def tsdb(clock):
    return TimeSeriesDB(clock=clock)
