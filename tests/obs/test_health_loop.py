"""End-to-end closed loop: brownout → burn-rate alert → action bus → recovery.

The acceptance scenario for the health engine, driven deterministically:

1. an instrumented :class:`RecommendationService` serves healthy traffic under
   a :class:`HealthEngine` sampling at the default 1 s cadence (fake clock);
2. a ``REPRO_FAULTS`` brownout injects a retrieval delay that drives p99 far
   over the latency objective → the multi-window burn-rate SLO breaches →
   the alert fires;
3. the action bus reacts: the orchestrator subscriber receives exactly one
   retrain signal and the breaker subscriber pre-opens the service's circuit
   breaker, shedding load to the popularity fallback;
4. the fault clears, the windows drain, the alert resolves, the breaker
   resets, and full service resumes — one episode end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import HealthEngine, use_registry
from repro.obs.alerts import FIRING, RESOLVED, breaker_subscriber, retrain_subscriber
from repro.obs.slo import SLO
from repro.reliability.breaker import CircuitBreaker
from repro.reliability.faults import FaultInjector, inject_faults
from repro.serve import RecommendationService, build_snapshot
from repro.serve.retrieval import ExactIndex

NUM_USERS = 64
USERS_PER_TICK = 8
OBJECTIVE = 0.004  # seconds; injected delay is 5x this
DELAY = 0.02


def tight_latency_slo() -> SLO:
    return SLO(
        name="serve-latency-p99",
        kind="latency",
        metric="serve.request.latency_seconds",
        objective=OBJECTIVE,
        quantile=0.99,
        fast_window=5.0,
        slow_window=15.0,
        budget_window=60.0,
        min_samples=3,
        severity="page",
        category="latency",
    )


class StubOrchestrator:
    def __init__(self) -> None:
        self.signals = []

    def submit(self, signal) -> None:
        self.signals.append(signal)


@pytest.fixture
def corpus():
    rng = np.random.default_rng(0)
    users = rng.normal(size=(NUM_USERS, 16))
    items = rng.normal(size=(96, 16))
    pairs = np.array([[u, u % 96] for u in range(NUM_USERS)])
    return build_snapshot(users, items, train_pairs=pairs, model_name="t", dataset_name="t")


def test_closed_loop_brownout_alert_shed_recover(corpus, clock, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "1")
    with use_registry() as registry:
        # Breaker with a huge reset timeout: only the alert→action bus may
        # close it again, so a resolution proves the loop (not a timer).
        breaker = CircuitBreaker(reset_timeout=10_000.0)
        service = RecommendationService(
            corpus,
            index=ExactIndex(corpus.item_embeddings),
            cache_size=0,  # every tick must hit retrieval (and the fault point)
            breaker=breaker,
        )
        engine = HealthEngine(
            registry=registry,
            slos=[tight_latency_slo()],
            interval=1.0,  # the default sampling cadence
            clock=clock,
            log_dir=tmp_path,
            resolve_duration=8.0,
        )
        orchestrator = StubOrchestrator()
        engine.subscribe(retrain_subscriber(orchestrator), categories=("latency",))
        engine.subscribe(breaker_subscriber(breaker), categories=("latency",))

        def tick(step: int):
            users = [(step * USERS_PER_TICK + i) % NUM_USERS for i in range(USERS_PER_TICK)]
            results = service.recommend_many(users, k=5)
            clock.advance(1.0)
            engine.tick()
            return results

        # -- phase 1: healthy traffic -----------------------------------
        for step in range(10):
            results = tick(step)
        assert all(r.source != "popularity" for r in results)
        assert engine.last_statuses[0].healthy
        assert engine.alerts.firing() == []

        # -- phase 2: brownout ------------------------------------------
        injector = FaultInjector().arm(
            "serve.retrieval", times=None, probability=1.0, mode="delay", delay=DELAY
        )
        with inject_faults(injector):
            step = 10
            while engine.alerts.firing() == [] and step < 30:
                tick(step)
                step += 1
        alert = engine.alerts.firing()[0]
        assert alert.name == "slo:serve-latency-p99"
        assert alert.episode == 1
        assert engine.last_statuses[0].breaching
        # The bus acted: exactly one retrain signal, breaker pre-opened.
        assert len(orchestrator.signals) == 1
        assert orchestrator.signals[0].reasons == ("alert:slo:serve-latency-p99#e1",)
        assert not breaker.allow()

        # With the breaker open the next queries shed to the fallback.
        shed = tick(step)
        step += 1
        assert all(r.source == "popularity" for r in shed)

        # -- phase 3: fault cleared, windows drain, alert resolves ------
        for _ in range(40):
            tick(step)
            step += 1
            if engine.alerts.alerts()[0].state == RESOLVED:
                break
        resolved = engine.alerts.alerts()[0]
        assert resolved.state == RESOLVED
        assert resolved.episode == 1  # one episode, no flapping
        assert len(orchestrator.signals) == 1  # still exactly one retrain
        # Resolution reset the breaker: full service is back.
        assert breaker.allow()
        healthy_again = tick(step)
        assert all(r.source != "popularity" for r in healthy_again)

        # Artefacts survived for the offline CLIs.
        engine.save()
        assert (tmp_path / "alerts.jsonl").exists()
        assert (tmp_path / "tsdb.jsonl").exists()
        events = [
            line.split('"event": "')[1].split('"')[0]
            for line in (tmp_path / "alerts.jsonl").read_text().splitlines()
        ]
        assert events == ["firing", "resolved"]


def test_sampling_cadence_and_alert_log_restart(corpus, clock, tmp_path, monkeypatch):
    """A restarted engine over the same log_dir does not re-fire the episode
    the previous process already delivered (dedupe across TSDB reload)."""
    monkeypatch.setenv("REPRO_FAULTS", "1")
    with use_registry() as registry:
        service = RecommendationService(
            corpus, index=ExactIndex(corpus.item_embeddings), cache_size=0
        )
        engine = HealthEngine(
            registry=registry,
            slos=[tight_latency_slo()],
            clock=clock,
            log_dir=tmp_path,
        )
        injector = FaultInjector().arm(
            "serve.retrieval", times=None, probability=1.0, mode="delay", delay=DELAY
        )
        with inject_faults(injector):
            for step in range(12):
                users = [(step * 8 + i) % NUM_USERS for i in range(8)]
                service.recommend_many(users, k=5)
                clock.advance(1.0)
                engine.tick()
        assert engine.alerts.firing() != []
        engine.save()

        # "Restart": new engine, same directory; TSDB reloads independently.
        from repro.obs import TimeSeriesDB

        reloaded_tsdb = TimeSeriesDB.load(tmp_path / "tsdb.jsonl", clock=clock)
        assert len(reloaded_tsdb) == len(engine.tsdb)
        events = []
        reborn = HealthEngine(
            registry=registry,
            slos=[tight_latency_slo()],
            clock=clock,
            log_dir=tmp_path,
        )
        reborn.subscribe(lambda event, alert: events.append(event))
        alert = reborn.alerts.alerts()[0]
        assert alert.state == FIRING
        assert alert.episode == 1
        clock.advance(1.0)
        reborn.tick()
        assert events == []  # the in-flight episode is not re-delivered
