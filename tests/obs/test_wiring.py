"""End-to-end wiring: real subsystems emit real series when metrics are on.

Components bind their metric handles at construction time, so every test here
constructs its subject *inside* ``use_registry``/``use_tracer`` scopes — the
same discipline operators must follow (enable observability before building
the service).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.metrics import use_registry
from repro.obs.tracing import Tracer, use_tracer
from repro.serve import RecommendationService, create_snapshot
from repro.stream import EventLog, StreamingUpdater


@pytest.fixture()
def snapshot(lightgcn_backbone):
    return create_snapshot(lightgcn_backbone)


class TestServiceWiring:
    def test_request_metrics_flow(self, snapshot):
        with use_registry() as registry:
            service = RecommendationService(snapshot, default_k=5)
            service.recommend_many([0, 1, 0], k=5)
            assert registry.value("serve.queries.total") == 3
            latency = registry.get("serve.request.latency_seconds")
            assert latency.count == 1
            assert latency.sum > 0.0
            batch = registry.get("serve.batch.size")
            assert batch.count == 1

    def test_cache_series_labeled_by_snapshot(self, snapshot):
        with use_registry() as registry:
            service = RecommendationService(snapshot, default_k=5, cache_size=64)
            labels = {"snapshot": snapshot.snapshot_id}
            service.recommend(0, k=5)
            service.recommend(0, k=5)
            assert registry.value("serve.cache.misses.total", labels=labels) == 1
            assert registry.value("serve.cache.hits.total", labels=labels) == 1

    def test_fallbacks_counted(self, snapshot):
        with use_registry() as registry:
            service = RecommendationService(snapshot, default_k=5)
            service.recommend(snapshot.num_users + 50, k=5)  # unknown -> popularity
            assert registry.value("serve.fallbacks.total") == 1

    def test_spans_describe_the_request(self, snapshot):
        with use_tracer(Tracer()) as tracer:
            service = RecommendationService(snapshot, default_k=5)
            service.recommend_many([0, 1], k=5)
            names = {s.name for s in tracer.spans}
            assert "serve.recommend_many" in names
            assert "serve.retrieval" in names
            retrieval = next(s for s in tracer.spans if s.name == "serve.retrieval")
            assert retrieval.path == ("serve.recommend_many", "serve.retrieval")

    def test_ivf_search_metrics(self, snapshot):
        from repro.serve import IVFIndex

        with use_registry() as registry:
            index = IVFIndex(snapshot.item_embeddings, n_probe=2)
            service = RecommendationService(snapshot, index=index, default_k=5)
            service.recommend_many([0, 1, 2], k=5)
            assert registry.value("ivf.searches.total") >= 1
            probes = registry.get("ivf.probe.count")
            assert probes.count >= 1
            assert registry.value("ivf.cells.scanned.total") >= 1
            assert registry.value("ivf.items.scanned.total") >= 1


class TestWalWiring:
    def test_append_and_fsync_counted(self, tmp_path):
        with use_registry() as registry:
            log = EventLog.open(tmp_path / "events.wal")
            log.append(1, 2)
            log.extend([3, 4], [5, 6])
            assert registry.value("wal.events.appended.total") == 3
            latency = registry.get("wal.append.latency_seconds")
            assert latency.count == 2  # one append + one extend batch
            assert registry.value("wal.fsync.total") >= 2

    def test_recovery_truncation_counted(self, tmp_path):
        path = tmp_path / "events.wal"
        EventLog.open(path).append(1, 2)
        with open(path, "ab") as handle:
            handle.write(b"\x01\x02\x03")  # torn tail from a crashed writer
        with use_registry() as registry:
            with pytest.warns(Warning):
                recovered = EventLog.open(path)
            assert len(recovered) == 1
            assert registry.value("wal.recovery.truncations.total") == 1


class TestStreamWiring:
    def test_update_cycle_metrics(self, snapshot):
        with use_registry() as registry:
            service = RecommendationService(snapshot, default_k=5)
            updater = StreamingUpdater(
                service, EventLog(), batch_size=16, min_interactions=1
            )
            user = snapshot.num_users  # brand-new user folds in
            for item in (0, 1, 2):
                service.record_interaction(user, item)
            report = updater.apply()
            assert report.events_applied == 3
            assert registry.value("stream.cycles.total") == 1
            assert registry.value("stream.events.applied.total") == 3
            assert registry.value("stream.users.folded.total") >= 1
            assert registry.value("stream.events.per_second") > 0
            residual = registry.get("stream.foldin.residual")
            assert residual.count >= 1


class TestOrchestratorWiring:
    def test_stage_durations_and_outcome(self, snapshot, tmp_path):
        from repro.orchestrate.retrain import RetrainConfig, RetrainOrchestrator
        from repro.stream.drift import RefreshSignal

        def fake_retrain(table):
            return create_snapshot_variant(snapshot)

        with use_registry() as registry:
            service = RecommendationService(snapshot, default_k=5)
            orchestrator = RetrainOrchestrator(
                service,
                retrain_fn=fake_retrain,
                base_table=None,
                eval_positives={0: np.array([1, 2])},
                config=RetrainConfig(directory=tmp_path, verify_snapshots=False),
            )
            signal = RefreshSignal(
                reasons=("test",), as_of_seq=1, metrics=orchestrator_metrics()
            )
            orchestrator.submit(signal)
            report = orchestrator.tick()
            assert report.outcome in {"promoted", "rejected", "rolled_back"}
            assert registry.value("orchestrate.ticks.total") == 1
            assert registry.value(
                "orchestrate.runs.total", labels={"outcome": report.outcome}
            ) == 1
            retrain_hist = registry.get(
                "orchestrate.stage.duration_seconds", labels={"stage": "retrain"}
            )
            assert retrain_hist.count == 1
            evaluate_hist = registry.get(
                "orchestrate.stage.duration_seconds", labels={"stage": "evaluate"}
            )
            assert evaluate_hist.count == 1


def create_snapshot_variant(snapshot):
    """A copy of ``snapshot`` with a different id (simulates a retrain)."""
    from repro.serve import build_snapshot

    return build_snapshot(
        snapshot.user_embeddings + 0.5,
        snapshot.item_embeddings,
        model_name="variant",
    )


def orchestrator_metrics():
    """A minimal drift-metrics payload accepted by RefreshSignal."""
    from repro.stream.drift import DriftMetrics

    return DriftMetrics(
        events_observed=1, popularity_kl=0.0, mean_residual=0.0, cold_user_ratio=0.0
    )
