"""Span tracing: parent links, context propagation, exports, flamegraphs."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.tracing import (
    Tracer,
    disable_tracing,
    flamegraph_from_spans,
    get_tracer,
    span,
    trace,
    tracing_enabled,
    use_tracer,
)


class TestSpanTree:
    def test_child_links_to_parent(self):
        tracer = Tracer()
        with tracer.trace("request") as parent:
            with tracer.span("retrieval") as child:
                pass
        assert child.parent_id == parent.span_id
        assert child.trace_id == parent.trace_id
        assert child.path == ("request", "retrieval")
        assert parent.path == ("request",)

    def test_root_span_has_no_parent(self):
        tracer = Tracer()
        with tracer.trace("outer"):
            with tracer.trace("inner") as inner:
                pass
        assert inner.parent_id is None
        assert inner.path == ("inner",)

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.trace("request") as parent:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == b.parent_id == parent.span_id

    def test_children_recorded_before_parent(self):
        tracer = Tracer()
        with tracer.trace("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.trace("boom"):
                raise RuntimeError("nope")
        assert len(tracer) == 1
        assert tracer.spans[0].status == "error"
        assert tracer.spans[0].wall >= 0.0

    def test_attrs_recorded(self):
        tracer = Tracer()
        with tracer.trace("request", users=3, k=10) as current:
            pass
        assert current.attrs == {"users": 3, "k": 10}

    def test_wall_and_cpu_measured(self):
        tracer = Tracer()
        with tracer.trace("work"):
            sum(range(10_000))
        recorded = tracer.spans[0]
        assert recorded.wall > 0.0
        assert recorded.cpu >= 0.0


class TestBoundsAndExport:
    def test_max_spans_drops_oldest(self):
        tracer = Tracer(max_spans=2)
        for name in ("a", "b", "c"):
            with tracer.trace(name):
                pass
        assert [s.name for s in tracer.spans] == ["b", "c"]
        assert tracer.dropped_spans == 1

    def test_max_spans_validation(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_export_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.trace("request"):
            with tracer.span("child"):
                pass
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(path) == 2
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert {row["name"] for row in rows} == {"request", "child"}
        assert all(
            set(row) >= {"name", "trace_id", "span_id", "path", "wall", "cpu", "status"}
            for row in rows
        )

    def test_export_to_file_object(self):
        tracer = Tracer()
        with tracer.trace("x"):
            pass
        buffer = io.StringIO()
        assert tracer.export_jsonl(buffer) == 1
        assert json.loads(buffer.getvalue())["name"] == "x"

    def test_reset_clears_spans_keeps_drop_counter(self):
        tracer = Tracer(max_spans=1)
        for _ in range(3):
            with tracer.trace("t"):
                pass
        tracer.reset()
        assert len(tracer) == 0
        assert tracer.dropped_spans == 2


class TestFlamegraph:
    def test_aggregates_by_path(self):
        spans = [
            {"name": "req", "path": ["req"], "wall": 1.0, "cpu": 0.5, "status": "ok"},
            {"name": "req", "path": ["req"], "wall": 1.0, "cpu": 0.5, "status": "ok"},
            {"name": "db", "path": ["req", "db"], "wall": 1.5, "cpu": 0.1, "status": "error"},
        ]
        rendered = flamegraph_from_spans(spans)
        assert "3 spans, 1 root path(s)" in rendered
        assert "n=2" in rendered  # both "req" spans merged onto one line
        assert "errors=1" in rendered
        # Self time of the root excludes the aggregated child wall.
        assert "self=0.500000s" in rendered

    def test_empty_trace(self):
        assert flamegraph_from_spans([]) == "flame: no spans recorded"

    def test_tracer_flamegraph_end_to_end(self):
        tracer = Tracer()
        with tracer.trace("serve"):
            with tracer.span("retrieval"):
                pass
        rendered = tracer.flamegraph(width=10)
        lines = rendered.splitlines()
        assert lines[1].startswith("serve")
        assert lines[2].startswith("  retrieval")


class TestGlobalState:
    def test_disabled_span_is_shared_noop(self):
        disable_tracing()
        assert not tracing_enabled()
        assert span("a") is span("b") is trace("c")
        with span("anything") as current:
            assert current is None
        assert get_tracer() is None

    def test_use_tracer_scopes_and_restores(self):
        disable_tracing()
        with use_tracer() as tracer:
            assert tracing_enabled()
            with trace("scoped"):
                pass
            assert len(tracer) == 1
        assert not tracing_enabled()
