"""Prompt assembly."""

from __future__ import annotations

import pytest

from repro.llm import ITEM_SYSTEM_PROMPT, USER_SYSTEM_PROMPT, build_prompt


class TestPrompts:
    def test_user_prompt_uses_user_system_prompt(self):
        prompt = build_prompt("User 3 likes science fiction.", entity="user")
        assert prompt.system_prompt == USER_SYSTEM_PROMPT
        assert "science fiction" in prompt.profile

    def test_item_prompt_uses_item_system_prompt(self):
        prompt = build_prompt("Item 7 is a cozy cafe.", entity="item")
        assert prompt.system_prompt == ITEM_SYSTEM_PROMPT

    def test_invalid_entity_rejected(self):
        with pytest.raises(ValueError):
            build_prompt("whatever", entity="review")

    def test_render_contains_sections(self):
        rendered = build_prompt("Profile text", entity="user").render()
        for section in ("[SYSTEM]", "[PROFILE]", "[RESPONSE]"):
            assert section in rendered
        assert "Profile text" in rendered

    def test_templates_are_frozen(self):
        prompt = build_prompt("Profile", entity="user")
        with pytest.raises(AttributeError):
            prompt.profile = "other"
