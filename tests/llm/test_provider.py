"""SemanticEmbeddings container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.llm import SemanticEmbeddings


class TestSemanticEmbeddings:
    def test_dimensions(self):
        embeddings = SemanticEmbeddings(np.zeros((4, 8)), np.zeros((6, 8)))
        assert embeddings.dim == 8
        assert embeddings.num_users == 4
        assert embeddings.num_items == 6

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SemanticEmbeddings(np.zeros((4, 8)), np.zeros((6, 9)))

    def test_non_matrix_rejected(self):
        with pytest.raises(ValueError):
            SemanticEmbeddings(np.zeros(4), np.zeros((6, 4)))

    def test_concatenated_order_users_then_items(self):
        users = np.ones((2, 3))
        items = np.full((3, 3), 2.0)
        joint = SemanticEmbeddings(users, items).concatenated()
        assert joint.shape == (5, 3)
        np.testing.assert_array_equal(joint[:2], users)
        np.testing.assert_array_equal(joint[2:], items)

    def test_save_and_load_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        embeddings = SemanticEmbeddings(rng.normal(size=(3, 4)), rng.normal(size=(5, 4)))
        path = tmp_path / "embeddings.npz"
        embeddings.save(str(path))
        restored = SemanticEmbeddings.load(str(path))
        np.testing.assert_allclose(restored.user_embeddings, embeddings.user_embeddings)
        np.testing.assert_allclose(restored.item_embeddings, embeddings.item_embeddings)
