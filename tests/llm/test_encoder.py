"""Simulated LLM encoders: shapes, determinism, semantic signal, fallbacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import InteractionDataset
from repro.llm import CachedProvider, HashingTextEncoder, SimulatedLLMEncoder


class TestSimulatedLLMEncoder:
    def test_shapes_and_unit_norm(self, tiny_dataset):
        embeddings = SimulatedLLMEncoder(embedding_dim=48, seed=0).encode(tiny_dataset)
        assert embeddings.user_embeddings.shape == (tiny_dataset.num_users, 48)
        assert embeddings.item_embeddings.shape == (tiny_dataset.num_items, 48)
        np.testing.assert_allclose(np.linalg.norm(embeddings.user_embeddings, axis=1), 1.0, atol=1e-9)

    def test_deterministic(self, tiny_dataset):
        a = SimulatedLLMEncoder(embedding_dim=32, seed=5).encode(tiny_dataset)
        b = SimulatedLLMEncoder(embedding_dim=32, seed=5).encode(tiny_dataset)
        np.testing.assert_array_equal(a.user_embeddings, b.user_embeddings)

    def test_seed_changes_embeddings(self, tiny_dataset):
        a = SimulatedLLMEncoder(embedding_dim=32, seed=1).encode(tiny_dataset)
        b = SimulatedLLMEncoder(embedding_dim=32, seed=2).encode(tiny_dataset)
        assert not np.allclose(a.user_embeddings, b.user_embeddings)

    def test_semantic_signal_separates_topics(self, tiny_dataset):
        """Users of the same latent topic should be closer in embedding space."""
        embeddings = SimulatedLLMEncoder(embedding_dim=64, noise_strength=0.2, seed=0).encode(tiny_dataset)
        clusters = np.asarray(tiny_dataset.metadata["user_clusters"])
        vectors = embeddings.user_embeddings
        same, different = [], []
        for i in range(len(vectors)):
            for j in range(i + 1, len(vectors)):
                similarity = float(vectors[i] @ vectors[j])
                (same if clusters[i] == clusters[j] else different).append(similarity)
        assert np.mean(same) > np.mean(different)

    def test_noise_strength_reduces_topic_separation(self, tiny_dataset):
        clusters = np.asarray(tiny_dataset.metadata["user_clusters"])

        def separation(noise: float) -> float:
            vectors = SimulatedLLMEncoder(
                embedding_dim=64, noise_strength=noise, seed=0
            ).encode(tiny_dataset).user_embeddings
            centroid_gap = []
            for topic in np.unique(clusters):
                inside = vectors[clusters == topic].mean(axis=0)
                outside = vectors[clusters != topic].mean(axis=0)
                centroid_gap.append(np.linalg.norm(inside - outside))
            return float(np.mean(centroid_gap))

        assert separation(0.0) > separation(3.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SimulatedLLMEncoder(embedding_dim=0)
        with pytest.raises(ValueError):
            SimulatedLLMEncoder(noise_strength=-1.0)

    def test_falls_back_to_hashing_without_metadata_factors(self, tiny_dataset):
        bare = InteractionDataset(
            name="bare",
            num_users=tiny_dataset.num_users,
            num_items=tiny_dataset.num_items,
            train=tiny_dataset.train,
            valid=tiny_dataset.valid,
            test=tiny_dataset.test,
            metadata={
                "user_clusters": tiny_dataset.metadata["user_clusters"],
                "item_clusters": tiny_dataset.metadata["item_clusters"],
            },
        )
        embeddings = SimulatedLLMEncoder(embedding_dim=32).encode(bare)
        assert embeddings.user_embeddings.shape == (bare.num_users, 32)


class TestHashingTextEncoder:
    def test_shapes(self, tiny_dataset):
        embeddings = HashingTextEncoder(embedding_dim=64).encode(tiny_dataset)
        assert embeddings.dim == 64
        assert embeddings.num_users == tiny_dataset.num_users

    def test_same_topic_items_share_embedding_direction(self, tiny_dataset):
        embeddings = HashingTextEncoder(embedding_dim=128).encode(tiny_dataset)
        clusters = np.asarray(tiny_dataset.metadata["item_clusters"])
        vectors = embeddings.item_embeddings
        topic = clusters[0]
        same = vectors[clusters == topic]
        if len(same) > 1:
            sims = same @ same[0]
            assert np.mean(sims[1:]) > 0.5

    def test_deterministic(self, tiny_dataset):
        a = HashingTextEncoder(embedding_dim=32).encode(tiny_dataset)
        b = HashingTextEncoder(embedding_dim=32).encode(tiny_dataset)
        np.testing.assert_array_equal(a.item_embeddings, b.item_embeddings)


class TestCachedProvider:
    def test_encode_called_once_per_dataset(self, tiny_dataset):
        calls = []

        class Counting(SimulatedLLMEncoder):
            def encode(self, dataset):
                calls.append(dataset.name)
                return super().encode(dataset)

        provider = CachedProvider(Counting(embedding_dim=16))
        first = provider.encode(tiny_dataset)
        second = provider.encode(tiny_dataset)
        assert first is second
        assert len(calls) == 1
