"""Cron parsing, interval schedules, and the deduplicating retrain scheduler."""

from __future__ import annotations

from datetime import datetime

import pytest

from repro.orchestrate import CronSpec, IntervalSchedule, RetrainScheduler, parse_schedule


def ts(*args) -> float:
    return datetime(*args).timestamp()


class TestCronSpec:
    def test_every_minute_matches_everything(self):
        spec = CronSpec.parse("* * * * *")
        assert spec.matches(ts(2026, 8, 8, 13, 37))
        assert spec.next_fire(ts(2026, 8, 8, 13, 37)) == ts(2026, 8, 8, 13, 38)

    def test_fixed_daily_time(self):
        spec = CronSpec.parse("30 2 * * *")
        assert spec.next_fire(ts(2026, 8, 8, 1, 0)) == ts(2026, 8, 8, 2, 30)
        # Already past today's slot: tomorrow.
        assert spec.next_fire(ts(2026, 8, 8, 3, 0)) == ts(2026, 8, 9, 2, 30)

    def test_next_fire_is_strictly_after(self):
        spec = CronSpec.parse("30 2 * * *")
        assert spec.next_fire(ts(2026, 8, 8, 2, 30)) == ts(2026, 8, 9, 2, 30)

    def test_steps_ranges_and_lists(self):
        spec = CronSpec.parse("*/15 9-17 * * 1,3,5")
        assert spec.minutes == frozenset({0, 15, 30, 45})
        assert spec.hours == frozenset(range(9, 18))
        assert spec.days_of_week == frozenset({1, 3, 5})
        # 2026-08-10 is a Monday (cron dow 1).
        assert spec.next_fire(ts(2026, 8, 8, 0, 0)) == ts(2026, 8, 10, 9, 0)

    def test_dom_dow_or_semantics(self):
        # Standard cron quirk: both restricted ⇒ either may match.
        spec = CronSpec.parse("0 0 15 * 0")
        # From the 10th (a Monday): Sunday the 13th? 2026-09-13 is a Sunday;
        # but from 2026-08-10 the next Sunday is 2026-08-16, while dom=15
        # lands on 2026-08-15 — the earlier of the two wins.
        assert spec.next_fire(ts(2026, 8, 10, 0, 0)) == ts(2026, 8, 15, 0, 0)
        # Right after the 15th, the dow leg (Sunday the 16th) fires first.
        assert spec.next_fire(ts(2026, 8, 15, 0, 0)) == ts(2026, 8, 16, 0, 0)

    def test_aliases(self):
        assert CronSpec.parse("@daily").next_fire(ts(2026, 8, 8, 5, 0)) == ts(2026, 8, 9, 0, 0)
        assert CronSpec.parse("@hourly").next_fire(ts(2026, 8, 8, 5, 10)) == ts(2026, 8, 8, 6, 0)

    def test_weekday_convention_sunday_is_zero(self):
        spec = CronSpec.parse("0 12 * * 0")
        # 2026-08-09 is a Sunday.
        assert spec.next_fire(ts(2026, 8, 8, 0, 0)) == ts(2026, 8, 9, 12, 0)

    @pytest.mark.parametrize(
        "text",
        ["", "* * * *", "60 * * * *", "* 24 * * *", "* * 0 * *", "* * * 13 *",
         "* * * * 7", "a * * * *", "*/0 * * * *", "5-1 * * * *"],
    )
    def test_rejects_malformed_specs(self, text):
        with pytest.raises(ValueError):
            CronSpec.parse(text)

    def test_impossible_spec_raises_instead_of_spinning(self):
        with pytest.raises(ValueError, match="never fires"):
            CronSpec.parse("0 0 30 2 *").next_fire(ts(2026, 1, 1, 0, 0))


class TestParseSchedule:
    def test_every_forms(self):
        assert parse_schedule("@every 30m").period == 1800.0
        assert parse_schedule("@every 2h").period == 7200.0
        assert parse_schedule("@every 45s").period == 45.0
        assert parse_schedule("@every 90").period == 90.0
        assert parse_schedule("@every 1d").period == 86400.0

    def test_cron_passthrough(self):
        assert isinstance(parse_schedule("0 3 * * *"), CronSpec)
        assert isinstance(parse_schedule("@daily"), CronSpec)

    @pytest.mark.parametrize("text", ["@every", "@every xm", "@every -5m"])
    def test_rejects_bad_every(self, text):
        if text == "@every -5m":
            with pytest.raises(ValueError):
                IntervalSchedule(period=-300.0)
            return
        with pytest.raises(ValueError):
            parse_schedule(text)


class TestRetrainScheduler:
    def make(self, schedule="@every 60s", start=1000.0, seq_fn=None):
        clock = {"now": start}
        scheduler = RetrainScheduler(schedule, clock=lambda: clock["now"], seq_fn=seq_fn)
        return clock, scheduler

    def test_fires_once_per_period(self):
        clock, scheduler = self.make()
        assert scheduler.check() is None  # not yet due
        clock["now"] += 61
        signal = scheduler.check()
        assert signal is not None
        assert signal.reasons == ("scheduled",)
        # Consumed: same instant does not fire twice.
        assert scheduler.check() is None
        clock["now"] += 61
        assert scheduler.check() is not None
        assert scheduler.fired == 2

    def test_missed_periods_coalesce_into_one_firing(self):
        clock, scheduler = self.make()
        clock["now"] += 60 * 10  # controller was down for ten periods
        assert scheduler.check() is not None
        assert scheduler.check() is None  # exactly one catch-up firing
        assert scheduler.fired == 1

    def test_skip_consumes_slot_without_signal(self):
        clock, scheduler = self.make()
        clock["now"] += 61
        assert scheduler.skip() is True  # a run was in flight: dedupe
        assert scheduler.check() is None  # the slot is spent
        assert scheduler.skipped == 1
        assert scheduler.fired == 0
        clock["now"] += 61
        assert scheduler.check() is not None  # next period fires normally

    def test_skip_is_noop_when_nothing_due(self):
        _, scheduler = self.make()
        assert scheduler.skip() is False
        assert scheduler.skipped == 0

    def test_signal_carries_event_log_seq(self):
        clock, scheduler = self.make(seq_fn=lambda: 4242)
        clock["now"] += 61
        assert scheduler.check().as_of_seq == 4242

    def test_default_seq_is_unknown(self):
        clock, scheduler = self.make()
        clock["now"] += 61
        assert scheduler.check().as_of_seq == -1

    def test_cron_schedule_through_scheduler(self):
        start = ts(2026, 8, 8, 1, 0)
        clock = {"now": start}
        scheduler = RetrainScheduler("0 2 * * *", clock=lambda: clock["now"])
        assert scheduler.check() is None
        clock["now"] = ts(2026, 8, 8, 2, 0)
        assert scheduler.check() is not None
        assert scheduler.next_due == ts(2026, 8, 9, 2, 0)

    def test_string_schedule_is_parsed(self):
        _, scheduler = self.make("@hourly")
        assert isinstance(scheduler.schedule, CronSpec)
