"""Lifecycle loop: graceful SIGINT drain and config validation.

The chaos/canary integration suites drive the orchestrator directly; this
file covers the ``repro retrain-loop`` wrapper itself.  The SIGINT test
raises a real signal from *inside* the loop (hooked through the streaming
updater, which runs exactly once per chunk) so the drain path is exercised
deterministically: the tick in flight must finish and journal, the loop must
not start another chunk, and the previous signal disposition must be
restored.
"""

from __future__ import annotations

import json
import signal

import pytest

from repro.orchestrate.loop import RetrainLoopConfig, run_retrain_loop
from repro.stream.updater import StreamingUpdater


def tiny_config(tmp_path, **overrides) -> RetrainLoopConfig:
    defaults = dict(
        directory=tmp_path,
        scale=0.1,
        epochs=1,
        embedding_dim=8,
        chunk_size=64,
        max_ticks=8,
        canary_fraction=0.5,
    )
    defaults.update(overrides)
    return RetrainLoopConfig(**defaults)


class TestSigintDrain:
    def test_first_sigint_finishes_the_tick_then_exits_cleanly(
        self, tmp_path, monkeypatch
    ):
        original_apply = StreamingUpdater.apply
        applies = {"count": 0}

        def interrupting_apply(self, *args, **kwargs):
            applies["count"] += 1
            if applies["count"] == 2:
                # A real Ctrl-C mid-chunk: the loop's handler only raises a
                # flag, so the rest of this tick must still run and journal.
                signal.raise_signal(signal.SIGINT)
            return original_apply(self, *args, **kwargs)

        monkeypatch.setattr(StreamingUpdater, "apply", interrupting_apply)
        disposition_before = signal.getsignal(signal.SIGINT)

        result = run_retrain_loop(tiny_config(tmp_path))

        assert result.interrupted is True
        assert result.as_row()["interrupted"] is True
        # The interrupted tick completed; no further chunk was started.
        assert applies["count"] == 2
        assert result.events_streamed <= 2 * 64
        # Whatever the orchestrator journaled mid-drain must be readable —
        # a fresh controller picks up from here.
        journal = tmp_path / "orchestrator.json"
        if journal.exists():
            state = json.loads(journal.read_text())
            assert "stages" in state
        # The loop must not leak its signal handler into the test process.
        assert signal.getsignal(signal.SIGINT) is disposition_before

    def test_uninterrupted_run_reports_not_interrupted(self, tmp_path):
        result = run_retrain_loop(
            tiny_config(tmp_path, canary_fraction=0.0, max_ticks=4)
        )
        assert result.interrupted is False
        assert "interrupted" not in result.as_row()


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"max_cycles": 0},
            {"canary_fraction": 1.5},
            {"canary_min_samples": 0},
            {"max_ticks": 0},
        ],
    )
    def test_bad_knobs_rejected(self, tmp_path, overrides):
        with pytest.raises(ValueError):
            tiny_config(tmp_path, **overrides)
