"""The orchestrator's multi-tick canary stage: ramp, abort, resume, schedule."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.orchestrate import (
    OrchestratorError,
    RetrainConfig,
    RetrainOrchestrator,
    RetrainScheduler,
    canary_status,
)
from repro.reliability import FaultInjector, RetryPolicy, inject_faults
from repro.reliability.faults import FAULTS_ENV
from repro.serve import RecommendationService, build_snapshot
from repro.serve.canary import GuardrailPolicy
from repro.stream.drift import DriftMetrics, RefreshSignal

NUM_USERS, NUM_ITEMS, DIM = 12, 16, 6
ALL_USERS = list(range(NUM_USERS))

#: Permissive guardrails: seed-0 vs seed-1 snapshots disagree heavily on
#: rankings, so promote-path tests must not gate on overlap.
LENIENT = GuardrailPolicy(min_samples=8, min_abort_samples=4, min_overlap=0.0)
#: Overlap gate no random candidate can pass — the deterministic abort lever.
STRICT_OVERLAP = GuardrailPolicy(min_samples=8, min_abort_samples=4, min_overlap=0.99)


def make_snapshot(seed: int):
    rng = np.random.default_rng(seed)
    pairs = np.stack(
        [np.repeat(np.arange(NUM_USERS), 2), np.arange(2 * NUM_USERS) % NUM_ITEMS],
        axis=1,
    )
    return build_snapshot(
        rng.normal(size=(NUM_USERS, DIM)),
        rng.normal(size=(NUM_ITEMS, DIM)),
        train_pairs=pairs,
    )


def make_signal(seq: int = 100) -> RefreshSignal:
    return RefreshSignal(
        reasons=("popularity_kl",),
        metrics=DriftMetrics(
            events_observed=60, popularity_kl=1.0, mean_residual=0.0, cold_user_ratio=0.0
        ),
        as_of_seq=seq,
    )


class CanaryHarness:
    """Orchestrator with the canary stage on and scripted live traffic."""

    def __init__(self, tmp_path, *, traffic_users=ALL_USERS, scheduler=None, **config):
        self.incumbent = make_snapshot(seed=0)
        self.candidate = make_snapshot(seed=1)
        self.service = RecommendationService(self.incumbent, default_k=5)
        self.scores = {
            self.incumbent.snapshot_id: 0.40,
            self.candidate.snapshot_id: 0.50,  # offline gate always passes
        }
        self.traffic_users = list(traffic_users)
        self.served: list[list] = []  # every batch of answers users received
        self.retrain_calls = 0
        config.setdefault("canary_fractions", (0.5, 1.0))
        config.setdefault("canary_policy", LENIENT)
        self.config = config
        self.orchestrator = self.build(tmp_path, scheduler=scheduler)

    def build(self, tmp_path, scheduler=None, **overrides) -> RetrainOrchestrator:
        # Rebuilds (fresh-controller simulation) reuse the harness config so a
        # "restarted process" runs the same canary setup as the dead one.
        config = {**self.config, **overrides}
        def retrain_fn(table):
            self.retrain_calls += 1
            return self.candidate

        def traffic(splitter):
            if self.traffic_users:
                self.served.append(splitter.recommend_many(self.traffic_users, k=5))

        return RetrainOrchestrator(
            self.service,
            retrain_fn=retrain_fn,
            base_table=None,
            eval_positives={0: np.array([1, 2])},
            config=RetrainConfig(
                directory=tmp_path,
                retry=RetryPolicy(attempts=2, base_delay=0.001, max_delay=0.002),
                **config,
            ),
            evaluate_fn=lambda snapshot, positives, k: self.scores[snapshot.snapshot_id],
            live_eval_fn=lambda service: self.scores[service.snapshot.snapshot_id],
            scheduler=scheduler,
            canary_traffic_fn=traffic,
        )

    def run_to_outcome(self, max_ticks: int = 50):
        reports = []
        for _ in range(max_ticks):
            report = self.orchestrator.tick()
            reports.append(report)
            if report.outcome is not None:
                return report, reports
        raise AssertionError(f"no outcome after {max_ticks} ticks")


class TestStageFlow:
    def test_no_fractions_skips_stage_and_promotes(self, tmp_path):
        harness = CanaryHarness(tmp_path, canary_fractions=())
        harness.orchestrator.submit(make_signal())
        report = harness.orchestrator.tick()
        assert report.outcome == "promoted"
        stage = harness.orchestrator.journal.load()["stages"]["canary"]
        assert stage == {"done": True, "decision": "skipped", "ticks": 0}
        # No guardrail flight recorder for a skipped stage.
        assert not (tmp_path / "canary-guardrails.jsonl").exists()

    def test_multi_tick_ramp_then_promote(self, tmp_path):
        harness = CanaryHarness(tmp_path)
        harness.orchestrator.submit(make_signal())
        first = harness.orchestrator.tick()
        # The canary holds the run open: no outcome, evidence journaled.
        assert first.outcome is None and not first.idle
        in_flight = harness.orchestrator.journal.load()
        assert in_flight["outcome"] is None
        assert in_flight["stages"]["canary"]["done"] is False
        assert in_flight["stages"]["canary"]["ticks"] >= 1
        # The incumbent serves throughout the shadow rollout.
        assert harness.service.snapshot.snapshot_id == harness.incumbent.snapshot_id

        report, reports = harness.run_to_outcome()
        assert report.outcome == "promoted"
        assert len(reports) >= 1  # took more ticks than the first
        state = harness.orchestrator.journal.load()
        stage = state["stages"]["canary"]
        assert stage["done"] is True
        assert stage["decision"] == "promote"
        assert stage["ticks"] >= 2
        assert stage["guardrails"]["samples"] >= LENIENT.min_samples
        assert any("canary ramped" in a for r in [first, *reports] for a in r.actions)
        assert harness.service.snapshot.snapshot_id == harness.candidate.snapshot_id
        # One guardrail record per canary tick, ending in the promote.
        lines = (tmp_path / "canary-guardrails.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == stage["ticks"]
        assert records[-1]["decision"] == "promote"
        assert {r["decision"] for r in records[:-1]} <= {"extend", "ramp"}

    def test_guardrail_breach_aborts_with_incumbent_serving(self, tmp_path):
        harness = CanaryHarness(tmp_path, canary_policy=STRICT_OVERLAP)
        harness.orchestrator.submit(make_signal())
        report, _ = harness.run_to_outcome()
        assert report.outcome == "aborted"
        stage = harness.orchestrator.journal.load()["stages"]["canary"]
        assert stage["decision"] == "abort"
        assert any("overlap" in reason for reason in stage["reasons"])
        # The candidate never owned traffic: zero swaps, incumbent serving.
        assert harness.service.snapshot.snapshot_id == harness.incumbent.snapshot_id
        assert harness.service.stats.snapshot_swaps == 0

    def test_no_traffic_times_out_into_abort(self, tmp_path):
        harness = CanaryHarness(tmp_path, traffic_users=[], canary_max_ticks=3)
        harness.orchestrator.submit(make_signal())
        report, reports = harness.run_to_outcome(max_ticks=5)
        assert report.outcome == "aborted"
        assert len(reports) == 3
        stage = harness.orchestrator.journal.load()["stages"]["canary"]
        assert any("no verdict" in reason for reason in stage["reasons"])
        assert harness.service.snapshot.snapshot_id == harness.incumbent.snapshot_id

    def test_canary_mode_serves_candidate_to_cohort_only(self, tmp_path):
        harness = CanaryHarness(tmp_path, canary_mode="canary", canary_fractions=(0.5,))
        harness.orchestrator.submit(make_signal())
        harness.orchestrator.tick()
        splitter = harness.orchestrator.active_splitter
        assert splitter is not None and splitter.mode == "canary"
        results = splitter.recommend_many(ALL_USERS, k=5)
        for user, rec in zip(ALL_USERS, results):
            expected = (
                harness.candidate.snapshot_id
                if splitter.in_cohort(user)
                else harness.incumbent.snapshot_id
            )
            assert rec.snapshot_id == expected
        # Both arms exist at fraction 0.5 over 12 users.
        assert any(splitter.in_cohort(u) for u in ALL_USERS)
        assert not all(splitter.in_cohort(u) for u in ALL_USERS)


class TestResumeMidCanary:
    def test_restarted_controller_keeps_cohort_and_evidence(self, tmp_path):
        harness = CanaryHarness(tmp_path)
        harness.orchestrator.submit(make_signal())
        harness.orchestrator.tick()  # in flight: evidence journaled
        splitter = harness.orchestrator.active_splitter
        cohort_before = {u: splitter.in_cohort(u) for u in ALL_USERS}
        samples_before = splitter.stats.samples
        assert samples_before > 0

        # A brand-new controller process over the same journal directory.
        restarted = harness.build(tmp_path)
        harness.orchestrator = restarted
        report = restarted.tick()
        assert any("resumed" in action for action in report.actions)
        resumed = restarted.active_splitter
        # Same run-id salt ⇒ no user flaps arms across the restart …
        assert {u: resumed.in_cohort(u) for u in ALL_USERS} == cohort_before
        # … and the journaled guardrail evidence carried over and grew.
        assert resumed.stats.samples > samples_before
        assert harness.retrain_calls == 1  # the journaled retrain was not rerun

        final, _ = harness.run_to_outcome()
        assert final.outcome == "promoted"

    def test_crash_before_progress_commit_reuses_prior_evidence(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(FAULTS_ENV, "1")
        harness = CanaryHarness(tmp_path)
        harness.orchestrator.submit(make_signal())
        harness.orchestrator.tick()
        journaled = harness.orchestrator.journal.load()["stages"]["canary"]

        # Die after collecting a tick of evidence, before it reaches disk.
        with inject_faults(FaultInjector().arm("orchestrator.commit.canary_progress")):
            with pytest.raises(OrchestratorError, match="resumes"):
                harness.orchestrator.tick()
        # The journal still holds the last *committed* tick, nothing torn.
        assert harness.orchestrator.journal.load()["stages"]["canary"] == journaled

        restarted = harness.build(tmp_path)
        harness.orchestrator = restarted
        restored = restarted.tick()
        assert any("resumed" in action for action in restored.actions)
        final, _ = harness.run_to_outcome()
        assert final.outcome == "promoted"

    def test_pre_canary_journal_gets_default_stage(self, tmp_path):
        # A journal written by the pre-canary controller has no "canary" key;
        # the resume path must default it rather than KeyError.
        harness = CanaryHarness(tmp_path, canary_fractions=())
        harness.orchestrator.submit(make_signal())
        harness.orchestrator.tick()
        state = harness.orchestrator.journal.load()
        state["outcome"] = None
        del state["stages"]["canary"]
        del state["stages"]["promote"]
        del state["stages"]["watch"]
        harness.orchestrator.journal.write(state)

        restarted = harness.build(tmp_path)
        harness.orchestrator = restarted
        report = restarted.tick()
        assert report.outcome == "promoted"
        assert restarted.journal.load()["stages"]["canary"]["decision"] == "skipped"


class TestScheduledRuns:
    def make_scheduler(self, start=1000.0):
        clock = {"now": start}
        return clock, RetrainScheduler("@every 60s", clock=lambda: clock["now"])

    def test_scheduler_firing_starts_a_run(self, tmp_path):
        clock, scheduler = self.make_scheduler()
        harness = CanaryHarness(tmp_path, canary_fractions=(), scheduler=scheduler)
        assert harness.orchestrator.tick().idle  # nothing due yet
        clock["now"] += 61
        report = harness.orchestrator.tick()
        assert report.outcome == "promoted"
        assert harness.orchestrator.journal.load()["signal"]["reasons"] == ["scheduled"]
        assert scheduler.fired == 1

    def test_firing_during_in_flight_canary_is_deduped(self, tmp_path):
        clock, scheduler = self.make_scheduler()
        harness = CanaryHarness(tmp_path, scheduler=scheduler)
        clock["now"] += 61
        first = harness.orchestrator.tick()  # scheduled run starts, canary in flight
        assert first.outcome is None and not first.idle
        run_id = first.run_id

        clock["now"] += 61  # a second firing lands mid-rollout
        report = harness.orchestrator.tick()
        assert any("deduped" in action for action in report.actions)
        assert report.run_id == run_id  # no second run was started
        assert scheduler.skipped == 1 and scheduler.fired == 1

        final, _ = harness.run_to_outcome()
        assert final.outcome == "promoted"
        assert harness.retrain_calls == 1


class TestCanaryStatus:
    def test_empty_directory(self, tmp_path):
        status = canary_status(tmp_path)
        assert status["run_id"] is None
        assert status["outcome"] is None
        assert status["canary_stage"] is None
        assert status["guardrail_records"] == 0
        assert status["latest"] is None

    def test_aborted_rollout_is_reported(self, tmp_path):
        harness = CanaryHarness(tmp_path, canary_policy=STRICT_OVERLAP)
        harness.orchestrator.submit(make_signal())
        report, _ = harness.run_to_outcome()
        status = canary_status(tmp_path)
        assert status["run_id"] == report.run_id
        assert status["outcome"] == "aborted"
        assert status["canary_stage"]["decision"] == "abort"
        assert status["guardrail_records"] >= 1
        assert status["latest"]["decision"] == "abort"
        assert status["latest"]["guardrails"]["samples"] > 0


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"canary_mode": "both"},
            {"canary_mirror_queue": 0},
            {"canary_max_ticks": 0},
        ],
    )
    def test_rejects_bad_canary_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RetrainConfig(**kwargs)
