"""Chaos: a misbehaving candidate must abort the canary, never hurt users.

The acceptance scenario for the canary subsystem: with ``REPRO_FAULTS``
injecting candidate-side errors and latency during shadow and canary
rollouts, the analyzer aborts, the incumbent keeps serving (no swap to roll
back — the candidate never owned the traffic), and **zero user-facing
queries fail**: every batch routed through the splitter comes back complete,
degraded at worst, while the chaos rages on the candidate arm.
"""

from __future__ import annotations

import pytest
from test_canary_stage import ALL_USERS, CanaryHarness, make_signal

from repro.reliability import FaultInjector, inject_faults
from repro.reliability.faults import FAULTS_ENV
from repro.serve.canary import GuardrailPolicy

#: Tight evidence thresholds so chaos runs converge in a handful of ticks.
CHAOS_POLICY = GuardrailPolicy(
    min_samples=8, min_abort_samples=4, min_overlap=0.0, max_error_rate=0.05
)


def always(site: str, **kwargs) -> FaultInjector:
    """An injector where every call at ``site`` fires (no at/times cap)."""
    return FaultInjector().arm(site, at=None, times=None, probability=1.0, **kwargs)


def assert_no_user_facing_failures(harness: CanaryHarness) -> None:
    """Every served batch is complete: right size, k items, a source set."""
    assert harness.served, "chaos run served no traffic at all"
    for batch in harness.served:
        assert len(batch) == len(harness.traffic_users)
        for rec in batch:
            assert len(rec.items) == 5
            assert rec.source in {"model", "popularity"}


class TestCandidateErrorChaos:
    def test_shadow_rollout_aborts_on_error_rate(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "1")
        harness = CanaryHarness(tmp_path, canary_policy=CHAOS_POLICY)
        harness.orchestrator.submit(make_signal())
        with inject_faults(always("canary.candidate")):
            report, _ = harness.run_to_outcome()
        assert report.outcome == "aborted"
        stage = harness.orchestrator.journal.load()["stages"]["canary"]
        assert stage["decision"] == "abort"
        assert any("error rate" in reason for reason in stage["reasons"])
        assert stage["guardrails"]["error_rate"] == 1.0
        # Shadow mode: users only ever saw the incumbent; chaos was invisible.
        assert harness.service.snapshot.snapshot_id == harness.incumbent.snapshot_id
        assert harness.service.stats.snapshot_swaps == 0
        assert_no_user_facing_failures(harness)
        for batch in harness.served:
            assert all(rec.snapshot_id == harness.incumbent.snapshot_id for rec in batch)

    def test_canary_rollout_degrades_cohort_and_aborts(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "1")
        harness = CanaryHarness(
            tmp_path, canary_mode="canary", canary_policy=CHAOS_POLICY
        )
        harness.orchestrator.submit(make_signal())
        with inject_faults(always("canary.candidate")):
            report, _ = harness.run_to_outcome()
        assert report.outcome == "aborted"
        # Cohort users rode through the outage on popularity answers from the
        # incumbent arm — degraded, never dropped.
        assert_no_user_facing_failures(harness)
        cohort_answers = [
            rec
            for batch in harness.served
            for rec in batch
            if rec.source == "popularity"
        ]
        assert cohort_answers, "the chaos never touched a cohort user"
        assert all(
            rec.snapshot_id == harness.incumbent.snapshot_id
            for rec in cohort_answers
        )
        assert harness.service.snapshot.snapshot_id == harness.incumbent.snapshot_id
        assert harness.service.stats.snapshot_swaps == 0


class TestCandidateLatencyChaos:
    def test_brownout_trips_latency_guardrail(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "1")
        harness = CanaryHarness(tmp_path, canary_policy=CHAOS_POLICY)
        harness.orchestrator.submit(make_signal())
        # The candidate answers — slowly. 50ms per batch is far above the
        # 2ms absolute floor and >3x any healthy in-process primary call.
        with inject_faults(always("canary.candidate", mode="delay", delay=0.05)):
            report, _ = harness.run_to_outcome()
        assert report.outcome == "aborted"
        stage = harness.orchestrator.journal.load()["stages"]["canary"]
        assert any("latency" in reason for reason in stage["reasons"])
        assert stage["guardrails"]["error_rate"] == 0.0  # slow, not failing
        assert stage["guardrails"]["latency_ratio"] > CHAOS_POLICY.max_latency_ratio
        assert harness.service.snapshot.snapshot_id == harness.incumbent.snapshot_id
        assert_no_user_facing_failures(harness)


class TestKilledControllerChaos:
    def test_controller_killed_mid_canary_resumes_and_still_aborts(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(FAULTS_ENV, "1")
        harness = CanaryHarness(tmp_path, canary_policy=CHAOS_POLICY)
        harness.orchestrator.submit(make_signal())
        injector = FaultInjector()
        injector.arm("canary.candidate", at=None, times=None, probability=1.0)
        injector.arm("orchestrator.canary", at=2)  # die on the second tick
        from repro.orchestrate import OrchestratorError

        with inject_faults(injector):
            harness.orchestrator.tick()  # tick 1: evidence accumulates
            cohort_before = {
                u: harness.orchestrator.active_splitter.in_cohort(u) for u in ALL_USERS
            }
            with pytest.raises(OrchestratorError, match="resumes"):
                harness.orchestrator.tick()  # tick 2: controller dies

        # Fresh controller, chaos still raging on the candidate arm.
        restarted = harness.build(tmp_path)
        harness.orchestrator = restarted
        with inject_faults(always("canary.candidate")):
            report, _ = harness.run_to_outcome()
        assert report.outcome == "aborted"
        # The resumed rollout kept the exact same cohort (salted hash) …
        resumed_state = restarted.journal.load()["stages"]["canary"]
        assert resumed_state["decision"] == "abort"
        splitter_salt = report.run_id
        from repro.serve.canary import cohort_hash

        fractions = harness.config["canary_fractions"]
        assert cohort_before == {
            u: cohort_hash(splitter_salt, u) < fractions[0] for u in ALL_USERS
        }
        # … and users never noticed any of it.
        assert harness.service.snapshot.snapshot_id == harness.incumbent.snapshot_id
        assert_no_user_facing_failures(harness)
