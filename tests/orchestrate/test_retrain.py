"""Blue/green orchestrator: gating, rollback, and journaled resume."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.orchestrate import (
    OrchestratorError,
    OrchestratorJournal,
    RetrainConfig,
    RetrainOrchestrator,
    offline_recall,
)
from repro.reliability import FaultInjector, RetryPolicy, inject_faults
from repro.reliability.faults import FAULTS_ENV
from repro.serve import RecommendationService, build_snapshot
from repro.stream.drift import DriftMetrics, RefreshSignal

NUM_USERS, NUM_ITEMS, DIM = 12, 16, 6


def make_snapshot(seed: int):
    rng = np.random.default_rng(seed)
    pairs = np.stack(
        [np.repeat(np.arange(NUM_USERS), 2), np.arange(2 * NUM_USERS) % NUM_ITEMS],
        axis=1,
    )
    return build_snapshot(
        rng.normal(size=(NUM_USERS, DIM)),
        rng.normal(size=(NUM_ITEMS, DIM)),
        train_pairs=pairs,
    )


def make_signal(seq: int = 100) -> RefreshSignal:
    return RefreshSignal(
        reasons=("popularity_kl",),
        metrics=DriftMetrics(
            events_observed=60, popularity_kl=1.0, mean_residual=0.0, cold_user_ratio=0.0
        ),
        as_of_seq=seq,
    )


class Harness:
    """Orchestrator over stub snapshots with scripted recall numbers."""

    def __init__(self, tmp_path, scores: dict[str, float], live_recall=None, **config):
        self.incumbent = make_snapshot(seed=0)
        self.candidate = make_snapshot(seed=1)
        self.scores = scores
        self.service = RecommendationService(self.incumbent, default_k=5)
        self.retrain_calls = 0
        self.evaluate_error: Exception | None = None
        self._live_recall = live_recall
        self.orchestrator = self.build(tmp_path, **config)

    def build(self, tmp_path, **config) -> RetrainOrchestrator:
        # Separate builder so tests can simulate a freshly restarted
        # controller over the same journal directory.
        def retrain_fn(table):
            self.retrain_calls += 1
            return self.candidate

        def evaluate_fn(snapshot, positives, k):
            if self.evaluate_error is not None:
                raise self.evaluate_error
            return self.scores[snapshot.snapshot_id]

        def live_eval_fn(service):
            if callable(self._live_recall):
                return self._live_recall(service)
            if self._live_recall is not None:
                return self._live_recall
            return self.scores[service.snapshot.snapshot_id]

        return RetrainOrchestrator(
            self.service,
            retrain_fn=retrain_fn,
            base_table=None,
            eval_positives={0: np.array([1, 2])},
            config=RetrainConfig(
                directory=tmp_path,
                retry=RetryPolicy(attempts=2, base_delay=0.001, max_delay=0.002),
                **config,
            ),
            evaluate_fn=evaluate_fn,
            live_eval_fn=live_eval_fn,
        )


class TestLifecycle:
    def test_idle_tick_without_signal(self, tmp_path):
        harness = Harness(tmp_path, scores={})
        report = harness.orchestrator.tick()
        assert report.idle
        assert report.outcome is None
        assert harness.retrain_calls == 0

    def test_promotes_better_candidate(self, tmp_path):
        harness = Harness(
            tmp_path,
            scores={},
        )
        harness.scores = {
            harness.incumbent.snapshot_id: 0.40,
            harness.candidate.snapshot_id: 0.50,
        }
        harness.orchestrator.submit(make_signal())
        report = harness.orchestrator.tick()
        assert report.outcome == "promoted"
        assert harness.service.snapshot.snapshot_id == harness.candidate.snapshot_id
        assert harness.retrain_calls == 1
        state = harness.orchestrator.journal.load()
        assert state["outcome"] == "promoted"
        assert state["stages"]["evaluate"]["promote"] is True
        # A follow-up tick with no new signal is idle — the run is terminal.
        assert harness.orchestrator.tick().idle

    def test_rejects_candidate_below_gate(self, tmp_path):
        harness = Harness(tmp_path, scores={})
        harness.scores = {
            harness.incumbent.snapshot_id: 0.50,
            harness.candidate.snapshot_id: 0.20,
        }
        harness.orchestrator.submit(make_signal())
        report = harness.orchestrator.tick()
        assert report.outcome == "rejected"
        # The incumbent keeps serving; no swap ever happened.
        assert harness.service.snapshot.snapshot_id == harness.incumbent.snapshot_id
        assert harness.service.stats.snapshot_swaps == 0

    def test_rolls_back_on_post_swap_regression_within_one_tick(self, tmp_path):
        harness = Harness(
            tmp_path,
            scores={},
            live_recall=0.01,  # offline gate is fooled; live eval collapses
        )
        harness.scores = {
            harness.incumbent.snapshot_id: 0.40,
            harness.candidate.snapshot_id: 0.50,
        }
        harness.orchestrator.submit(make_signal())
        report = harness.orchestrator.tick()
        assert report.outcome == "rolled_back"
        assert harness.service.snapshot.snapshot_id == harness.incumbent.snapshot_id
        state = harness.orchestrator.journal.load()
        assert state["stages"]["watch"]["rolled_back"] is True
        assert state["stages"]["watch"]["reason"] == "eval_regression"
        # Swapped in, then swapped back — two swaps, one tick.
        assert harness.service.stats.snapshot_swaps == 2

    def test_rolls_back_on_breaker_trip(self, tmp_path):
        def tripping_live_eval(service):
            service.breaker.trip()
            return 0.50  # recall looks fine; the breaker is the tell

        harness = Harness(tmp_path, scores={}, live_recall=tripping_live_eval)
        harness.scores = {
            harness.incumbent.snapshot_id: 0.40,
            harness.candidate.snapshot_id: 0.50,
        }
        harness.orchestrator.submit(make_signal())
        report = harness.orchestrator.tick()
        assert report.outcome == "rolled_back"
        assert harness.orchestrator.journal.load()["stages"]["watch"]["reason"] == "breaker_trip"
        assert harness.service.snapshot.snapshot_id == harness.incumbent.snapshot_id


class TestResume:
    def test_restarted_controller_resumes_without_retraining_again(self, tmp_path):
        harness = Harness(tmp_path, scores={})
        harness.scores = {
            harness.incumbent.snapshot_id: 0.40,
            harness.candidate.snapshot_id: 0.50,
        }
        harness.evaluate_error = RuntimeError("evaluator crashed")
        harness.orchestrator.submit(make_signal())
        with pytest.raises(OrchestratorError, match="resumes"):
            harness.orchestrator.tick()
        assert harness.retrain_calls == 1  # retrain completed and was journaled

        # A brand-new controller process over the same directory.
        harness.evaluate_error = None
        restarted = harness.build(tmp_path)
        report = restarted.tick()
        assert any("resumed" in action for action in report.actions)
        assert report.outcome == "promoted"
        assert harness.retrain_calls == 1  # the journaled stage was NOT rerun
        assert harness.service.snapshot.snapshot_id == harness.candidate.snapshot_id

    def test_crash_before_stage_commit_reruns_that_stage(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "1")
        harness = Harness(tmp_path, scores={})
        harness.scores = {
            harness.incumbent.snapshot_id: 0.40,
            harness.candidate.snapshot_id: 0.50,
        }
        harness.orchestrator.submit(make_signal())
        # Die after retraining but before the stage reaches the journal.
        with inject_faults(FaultInjector().arm("orchestrator.commit.retrain")):
            with pytest.raises(OrchestratorError):
                harness.orchestrator.tick()
        assert harness.retrain_calls == 1

        restarted = harness.build(tmp_path)
        report = restarted.tick()
        # At-least-once semantics: the uncommitted stage runs again …
        assert harness.retrain_calls == 2
        # … and the run still converges.
        assert report.outcome == "promoted"

    def test_resumed_promotion_is_reapplied_to_a_fresh_service(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(FAULTS_ENV, "1")
        harness = Harness(tmp_path, scores={})
        harness.scores = {
            harness.incumbent.snapshot_id: 0.40,
            harness.candidate.snapshot_id: 0.50,
        }
        harness.orchestrator.submit(make_signal())
        # Die between the journaled promotion and the watch stage.
        with inject_faults(FaultInjector().arm("orchestrator.watch")):
            with pytest.raises(OrchestratorError):
                harness.orchestrator.tick()

        # The restarted controller finds a fresh service still serving the
        # incumbent (a real restart would reload the last-known snapshot).
        harness.service = RecommendationService(harness.incumbent, default_k=5)
        restarted = harness.build(tmp_path)
        report = restarted.tick()
        assert report.outcome == "promoted"
        assert any("re-applied" in action for action in report.actions)
        assert harness.service.snapshot.snapshot_id == harness.candidate.snapshot_id

    def test_unreadable_journal_is_refused_loudly(self, tmp_path):
        harness = Harness(tmp_path, scores={})
        harness.orchestrator.journal.path.parent.mkdir(parents=True, exist_ok=True)
        harness.orchestrator.journal.path.write_text("{not json")
        with pytest.raises(OrchestratorError, match="unreadable"):
            harness.orchestrator.tick()


class TestJournal:
    def test_roundtrip_and_clear(self, tmp_path):
        journal = OrchestratorJournal(tmp_path / "j" / "state.json")
        assert journal.load() is None
        journal.write({"run_id": "r1", "outcome": None})
        assert journal.load() == {"run_id": "r1", "outcome": None}
        journal.clear()
        assert journal.load() is None

    def test_write_is_atomic_json(self, tmp_path):
        journal = OrchestratorJournal(tmp_path / "state.json")
        journal.write({"stages": {"retrain": {"done": True}}})
        # The on-disk file is always a complete document.
        assert json.loads(journal.path.read_text())["stages"]["retrain"]["done"]


class TestWorkerRetrain:
    def test_retrain_in_worker_process(self, tmp_path):
        harness = Harness(tmp_path, scores={}, use_worker=True, worker_timeout=60.0)
        harness.scores = {
            harness.incumbent.snapshot_id: 0.40,
            harness.candidate.snapshot_id: 0.50,
        }
        harness.orchestrator.submit(make_signal())
        report = harness.orchestrator.tick()
        assert report.outcome == "promoted"
        # The fork ran in a child: the parent's counter never incremented,
        # but the candidate artifact it published was picked up and promoted.
        assert harness.service.snapshot.snapshot_id == harness.candidate.snapshot_id


class TestOfflineRecall:
    def test_perfect_and_empty_positives(self):
        users = np.eye(4, dtype=np.float64)
        items = np.eye(4, dtype=np.float64) * 10.0
        snapshot = build_snapshot(users, items)
        # User u's best item is item u by construction.
        assert offline_recall(snapshot, {0: np.array([0])}, k=1) == 1.0
        assert offline_recall(snapshot, {0: np.array([3])}, k=1) == 0.0
        assert offline_recall(snapshot, {}, k=1) == 0.0
        # Users outside the snapshot are skipped, not crashed on.
        assert offline_recall(snapshot, {99: np.array([0])}, k=1) == 0.0

    def test_masks_training_history(self):
        users = np.eye(4, dtype=np.float64)
        items = np.eye(4, dtype=np.float64) * 10.0
        pairs = np.array([[0, 0]])  # user 0 already trained on item 0
        snapshot = build_snapshot(users, items, train_pairs=pairs)
        # Item 0 is masked out for user 0, so its held-out "positive" at
        # item 0 can never be retrieved — recall drops to 0.
        assert offline_recall(snapshot, {0: np.array([0])}, k=1) == 0.0


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"min_recall_ratio": -0.1},
            {"rollback_tolerance": 1.5},
            {"worker_timeout": 0.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RetrainConfig(**kwargs)
