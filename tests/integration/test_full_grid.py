"""Integration grid: every backbone × every alignment variant trains and evaluates.

These tests guard the plug-and-play contract of the paper — any collaborative
backbone must compose with any alignment framework without special casing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.align import AlignedRecommender, create_alignment
from repro.align.darec import DaRecConfig
from repro.data.sampling import BprSampler
from repro.eval import RankingEvaluator
from repro.models import BACKBONES, GraphRecommender, create_backbone
from repro.nn import Adam

ALIGNMENT_NAMES = ("none", "rlmrec-con", "rlmrec-gen", "kar", "darec")
BACKBONE_NAMES = sorted(BACKBONES)


def make_backbone(name, dataset):
    kwargs = {"embedding_dim": 12, "seed": 0}
    if issubclass(BACKBONES[name], GraphRecommender):
        kwargs["num_layers"] = 1
    return create_backbone(name, dataset, **kwargs)


def make_alignment(name, backbone, semantic):
    if name == "darec":
        return create_alignment(
            name, backbone, semantic, config=DaRecConfig(shared_dim=8, hidden_dim=8, num_centers=2, sample_size=32)
        )
    return create_alignment(name, backbone, semantic)


@pytest.mark.parametrize("backbone_name", BACKBONE_NAMES)
@pytest.mark.parametrize("alignment_name", ALIGNMENT_NAMES)
def test_backbone_alignment_composition(backbone_name, alignment_name, tiny_dataset, tiny_semantic):
    """One optimisation step plus a full evaluation for every combination."""
    backbone = make_backbone(backbone_name, tiny_dataset)
    alignment = make_alignment(alignment_name, backbone, tiny_semantic)
    model = AlignedRecommender(backbone, alignment, trade_off=0.1)

    sampler = BprSampler(tiny_dataset, batch_size=128, seed=0)
    optimizer = Adam(model.parameters(), lr=1e-3)
    model.on_epoch_start()
    batch = next(iter(sampler.epoch()))

    before = {name: param.data.copy() for name, param in list(model.named_parameters())[:3]}
    loss = model.loss(batch)
    assert np.isfinite(loss.item())
    loss.backward()
    optimizer.step()
    after = {name: param.data for name, param in list(model.named_parameters())[:3]}
    assert any(not np.allclose(before[name], after[name]) for name in before)

    result = RankingEvaluator(tiny_dataset, ks=(10,)).evaluate(model)
    assert 0.0 <= result.metrics["recall@10"] <= 1.0


@pytest.mark.parametrize("alignment_name", ("rlmrec-con", "darec"))
def test_alignment_improves_or_matches_untrained_scores(alignment_name, tiny_dataset, tiny_semantic):
    """Training with an alignment module should not break ranking ability."""
    backbone = make_backbone("lightgcn", tiny_dataset)
    alignment = make_alignment(alignment_name, backbone, tiny_semantic)
    model = AlignedRecommender(backbone, alignment, trade_off=0.1)
    evaluator = RankingEvaluator(tiny_dataset, ks=(20,))
    untrained = evaluator.evaluate(model).metrics["recall@20"]

    sampler = BprSampler(tiny_dataset, batch_size=256, seed=0)
    optimizer = Adam(model.parameters(), lr=0.01)
    for _ in range(4):
        model.on_epoch_start()
        for batch in sampler.epoch():
            optimizer.zero_grad()
            model.loss(batch).backward()
            optimizer.step()
    trained = evaluator.evaluate(model).metrics["recall@20"]
    assert trained >= untrained - 0.02
