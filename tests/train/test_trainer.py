"""Training loop: configuration, fitting, evaluation, early stopping wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.align import AlignedRecommender, DaRec, DaRecConfig, RLMRecContrastive
from repro.models import BPRMF, LightGCN
from repro.train import Trainer, TrainingConfig, train_recommender


class TestTrainingConfig:
    def test_defaults_valid(self):
        config = TrainingConfig()
        assert config.trade_off == pytest.approx(0.1)
        assert config.learning_rate == pytest.approx(1e-3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": 0},
            {"batch_size": 0},
            {"learning_rate": 0.0},
            {"trade_off": -0.5},
            {"eval_every": -1},
            {"early_stopping_patience": -1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TrainingConfig(**kwargs)


class TestTrainer:
    def test_fit_records_one_loss_per_epoch(self, tiny_dataset):
        backbone = BPRMF(tiny_dataset, embedding_dim=8, seed=0)
        model = AlignedRecommender(backbone, None)
        trainer = Trainer(model, TrainingConfig(epochs=3, batch_size=256, learning_rate=0.01))
        history = trainer.fit()
        assert history.num_epochs == 3
        assert all(np.isfinite(loss) for loss in history.epoch_losses)

    def test_training_improves_over_random_scores(self, tiny_dataset):
        backbone = LightGCN(tiny_dataset, embedding_dim=16, num_layers=2, seed=0)
        model = AlignedRecommender(backbone, None)
        trainer = Trainer(model, TrainingConfig(epochs=8, batch_size=256, learning_rate=0.01))
        before = trainer.evaluate(split="test").metrics["recall@20"]
        trainer.fit()
        after = trainer.evaluate(split="test").metrics["recall@20"]
        assert after >= before

    def test_loss_decreases(self, tiny_dataset):
        backbone = LightGCN(tiny_dataset, embedding_dim=16, num_layers=2, seed=0)
        model = AlignedRecommender(backbone, None)
        trainer = Trainer(model, TrainingConfig(epochs=6, batch_size=256, learning_rate=0.01))
        history = trainer.fit()
        assert history.final_loss < history.epoch_losses[0]

    def test_validation_recorded_when_eval_every_set(self, tiny_dataset):
        backbone = BPRMF(tiny_dataset, embedding_dim=8, seed=0)
        model = AlignedRecommender(backbone, None)
        trainer = Trainer(model, TrainingConfig(epochs=4, eval_every=2, batch_size=256))
        history = trainer.fit()
        assert len(history.validation) == 2
        assert "recall@20" in history.validation[0]

    def test_early_stopping_halts_training(self, tiny_dataset):
        backbone = BPRMF(tiny_dataset, embedding_dim=8, seed=0)
        model = AlignedRecommender(backbone, None)
        config = TrainingConfig(
            epochs=30,
            batch_size=256,
            learning_rate=1e-6,  # effectively frozen → metric never improves
            eval_every=1,
            early_stopping_patience=2,
        )
        history = Trainer(model, config).fit()
        assert history.stopped_early
        assert history.num_epochs < 30

    def test_unknown_early_stopping_metric_raises(self, tiny_dataset):
        backbone = BPRMF(tiny_dataset, embedding_dim=8, seed=0)
        model = AlignedRecommender(backbone, None)
        config = TrainingConfig(
            epochs=2, eval_every=1, early_stopping_patience=1, early_stopping_metric="auc@20"
        )
        with pytest.raises(KeyError):
            Trainer(model, config).fit()

    def test_history_final_loss_requires_epochs(self):
        from repro.train import TrainingHistory

        with pytest.raises(ValueError):
            TrainingHistory().final_loss


class TestTrainRecommender:
    def test_plain_backbone(self, tiny_dataset):
        backbone = BPRMF(tiny_dataset, embedding_dim=8, seed=0)
        model, history = train_recommender(backbone, None, TrainingConfig(epochs=2, batch_size=512))
        assert history.num_epochs == 2
        assert model.score_all().shape == (tiny_dataset.num_users, tiny_dataset.num_items)

    def test_with_darec_alignment(self, tiny_dataset, tiny_semantic):
        backbone = LightGCN(tiny_dataset, embedding_dim=16, seed=0)
        alignment = DaRec(backbone, tiny_semantic, DaRecConfig(sample_size=48, num_centers=3))
        model, history = train_recommender(backbone, alignment, TrainingConfig(epochs=2, batch_size=512))
        assert np.isfinite(history.final_loss)

    def test_with_rlmrec_alignment(self, tiny_dataset, tiny_semantic):
        backbone = LightGCN(tiny_dataset, embedding_dim=16, seed=0)
        alignment = RLMRecContrastive(backbone, tiny_semantic, seed=0)
        model, history = train_recommender(backbone, alignment, TrainingConfig(epochs=2, batch_size=512))
        assert history.num_epochs == 2


class TestCompiledTraining:
    """The compiled trace/replay path reproduces eager training bitwise."""

    def _histories(self, build_model, epochs=3):
        eager_model = build_model()
        replay_model = build_model()
        eager_trainer = Trainer(eager_model, TrainingConfig(epochs=epochs, batch_size=256, compile=False))
        replay_trainer = Trainer(replay_model, TrainingConfig(epochs=epochs, batch_size=256, compile=True))
        return eager_trainer, replay_trainer

    def test_plain_backbone_bit_identical(self, tiny_dataset):
        def build():
            backbone = LightGCN(tiny_dataset, embedding_dim=16, num_layers=2, seed=0)
            return AlignedRecommender(backbone, None)

        eager_trainer, replay_trainer = self._histories(build)
        assert replay_trainer.compiled_step is not None
        eager_history = eager_trainer.fit()
        replay_history = replay_trainer.fit()
        assert eager_history.epoch_losses == replay_history.epoch_losses
        for pa, pb in zip(eager_trainer.model.parameters(), replay_trainer.model.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)
        assert replay_trainer.compiled_step.stats.traces >= 1
        assert replay_trainer.compiled_step.stats.fallbacks == 0

    def test_darec_alignment_bit_identical(self, tiny_dataset, tiny_semantic):
        def build():
            backbone = LightGCN(tiny_dataset, embedding_dim=16, seed=0)
            alignment = DaRec(backbone, tiny_semantic, DaRecConfig(sample_size=48, num_centers=3))
            return AlignedRecommender(backbone, alignment, trade_off=0.1)

        eager_trainer, replay_trainer = self._histories(build)
        assert replay_trainer.compiled_step is not None
        eager_history = eager_trainer.fit()
        replay_history = replay_trainer.fit()
        assert eager_history.epoch_losses == replay_history.epoch_losses
        for pa, pb in zip(eager_trainer.model.parameters(), replay_trainer.model.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_untraceable_backbone_keeps_eager_path(self, tiny_dataset):
        from repro.models import SGL

        backbone = SGL(tiny_dataset, embedding_dim=16, seed=0)
        model = AlignedRecommender(backbone, None)
        trainer = Trainer(model, TrainingConfig(epochs=1, batch_size=256, compile=True))
        assert trainer.compiled_step is None  # trace_static=False opts out
        history = trainer.fit()
        assert np.isfinite(history.final_loss)

    def test_rlmrec_alignment_keeps_eager_path(self, tiny_dataset, tiny_semantic):
        backbone = LightGCN(tiny_dataset, embedding_dim=16, seed=0)
        alignment = RLMRecContrastive(backbone, tiny_semantic, seed=0)
        model = AlignedRecommender(backbone, alignment)
        trainer = Trainer(model, TrainingConfig(epochs=1, batch_size=256, compile=True))
        assert trainer.compiled_step is None  # no pure-step split implemented
        assert np.isfinite(trainer.fit().final_loss)

    def test_compile_flag_off_disables_compilation(self, tiny_dataset):
        backbone = BPRMF(tiny_dataset, embedding_dim=8, seed=0)
        model = AlignedRecommender(backbone, None)
        trainer = Trainer(model, TrainingConfig(epochs=1, compile=False))
        assert trainer.compiled_step is None
