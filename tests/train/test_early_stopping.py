"""Early stopping logic."""

from __future__ import annotations

import pytest

from repro.train import EarlyStopping


class TestEarlyStopping:
    def test_improving_metric_never_stops(self):
        stopper = EarlyStopping(patience=2)
        assert not any(stopper.update(value, step) for step, value in enumerate([0.1, 0.2, 0.3, 0.4]))

    def test_stops_after_patience_bad_checks(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(0.5, 0)
        assert not stopper.update(0.4, 1)
        assert stopper.update(0.3, 2)
        assert stopper.should_stop

    def test_best_value_and_step_tracked(self):
        stopper = EarlyStopping(patience=3)
        for step, value in enumerate([0.1, 0.5, 0.3, 0.2]):
            stopper.update(value, step)
        assert stopper.best_value == pytest.approx(0.5)
        assert stopper.best_step == 1

    def test_min_delta_requires_meaningful_improvement(self):
        stopper = EarlyStopping(patience=1, min_delta=0.05)
        stopper.update(0.5, 0)
        # +0.01 is within min_delta → counts as no improvement.
        assert stopper.update(0.51, 1)

    def test_counter_resets_on_improvement(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(0.5, 0)
        stopper.update(0.4, 1)
        stopper.update(0.6, 2)
        assert not stopper.update(0.55, 3)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
        with pytest.raises(ValueError):
            EarlyStopping(patience=1, min_delta=-0.1)
