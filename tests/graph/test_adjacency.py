"""Adjacency construction and symmetric normalisation."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph import build_interaction_matrix, build_normalized_adjacency, symmetric_normalize


class TestSymmetricNormalize:
    def test_row_sums_bounded_by_one(self):
        matrix = sp.csr_matrix(np.array([[0, 1, 1], [1, 0, 0], [1, 0, 0]], dtype=float))
        normalised = symmetric_normalize(matrix).toarray()
        assert normalised.max() <= 1.0 + 1e-12
        # Symmetric input stays symmetric.
        np.testing.assert_allclose(normalised, normalised.T, atol=1e-12)

    def test_zero_degree_rows_stay_zero(self):
        matrix = sp.csr_matrix(np.array([[0, 0], [0, 1]], dtype=float))
        normalised = symmetric_normalize(matrix).toarray()
        np.testing.assert_allclose(normalised[0], [0.0, 0.0])

    def test_matches_manual_formula(self):
        dense = np.array([[0, 1], [1, 1]], dtype=float)
        degrees = dense.sum(axis=1)
        expected = np.diag(1 / np.sqrt(degrees)) @ dense @ np.diag(1 / np.sqrt(degrees))
        np.testing.assert_allclose(symmetric_normalize(sp.csr_matrix(dense)).toarray(), expected)


class TestBuildNormalizedAdjacency:
    def test_shape_is_joint_graph(self, tiny_dataset):
        adjacency = build_normalized_adjacency(tiny_dataset)
        n = tiny_dataset.num_users + tiny_dataset.num_items
        assert adjacency.shape == (n, n)

    def test_bipartite_blocks_are_zero(self, tiny_dataset):
        adjacency = build_normalized_adjacency(tiny_dataset).toarray()
        nu = tiny_dataset.num_users
        assert np.allclose(adjacency[:nu, :nu], 0.0)
        assert np.allclose(adjacency[nu:, nu:], 0.0)

    def test_symmetry(self, tiny_dataset):
        adjacency = build_normalized_adjacency(tiny_dataset).toarray()
        np.testing.assert_allclose(adjacency, adjacency.T, atol=1e-12)

    def test_self_loops_option(self, tiny_dataset):
        adjacency = build_normalized_adjacency(tiny_dataset, add_self_loops=True).toarray()
        assert np.all(np.diag(adjacency) > 0)

    def test_interaction_matrix_is_train_matrix(self, tiny_dataset):
        assert build_interaction_matrix(tiny_dataset).nnz == tiny_dataset.train_matrix.nnz

    def test_custom_interaction_matrix(self, tiny_dataset):
        empty = sp.csr_matrix((tiny_dataset.num_users, tiny_dataset.num_items))
        adjacency = build_normalized_adjacency(tiny_dataset, interaction_matrix=empty)
        assert adjacency.nnz == 0
