"""Graph augmentation views for SGL / AutoCF."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import edge_dropout_view, masked_interaction_matrix, node_dropout_view


class TestEdgeDropout:
    def test_dropout_reduces_edges(self, tiny_dataset, rng):
        full_nnz = tiny_dataset.train_matrix.nnz
        view = edge_dropout_view(tiny_dataset, drop_rate=0.5, rng=rng)
        # The adjacency is the joint graph: each kept interaction contributes two entries.
        assert view.nnz < 2 * full_nnz
        assert view.nnz > 0

    def test_zero_dropout_keeps_everything(self, tiny_dataset, rng):
        view = edge_dropout_view(tiny_dataset, drop_rate=0.0, rng=rng)
        assert view.nnz == 2 * tiny_dataset.train_matrix.nnz

    def test_invalid_rate(self, tiny_dataset, rng):
        with pytest.raises(ValueError):
            edge_dropout_view(tiny_dataset, drop_rate=1.0, rng=rng)

    def test_views_differ_between_draws(self, tiny_dataset):
        rng = np.random.default_rng(0)
        a = edge_dropout_view(tiny_dataset, 0.3, rng)
        b = edge_dropout_view(tiny_dataset, 0.3, rng)
        assert (a != b).nnz > 0


class TestNodeDropout:
    def test_dropout_reduces_edges(self, tiny_dataset, rng):
        view = node_dropout_view(tiny_dataset, drop_rate=0.3, rng=rng)
        assert 0 < view.nnz <= 2 * tiny_dataset.train_matrix.nnz

    def test_invalid_rate(self, tiny_dataset, rng):
        with pytest.raises(ValueError):
            node_dropout_view(tiny_dataset, drop_rate=-0.1, rng=rng)


class TestMaskedInteractionMatrix:
    def test_masked_plus_kept_equals_total(self, tiny_dataset, rng):
        reduced, masked_pairs = masked_interaction_matrix(tiny_dataset, mask_rate=0.25, rng=rng)
        assert reduced.nnz + len(masked_pairs) == tiny_dataset.train_matrix.nnz

    def test_masked_pairs_are_real_interactions(self, tiny_dataset, rng):
        _, masked_pairs = masked_interaction_matrix(tiny_dataset, mask_rate=0.25, rng=rng)
        positives = tiny_dataset.train_positives
        for user, item in masked_pairs[:50]:
            assert item in positives[int(user)]

    def test_mask_rate_bounds(self, tiny_dataset, rng):
        with pytest.raises(ValueError):
            masked_interaction_matrix(tiny_dataset, mask_rate=0.0, rng=rng)
        with pytest.raises(ValueError):
            masked_interaction_matrix(tiny_dataset, mask_rate=1.0, rng=rng)

    def test_roughly_mask_rate_fraction_masked(self, tiny_dataset):
        rng = np.random.default_rng(1)
        _, masked_pairs = masked_interaction_matrix(tiny_dataset, mask_rate=0.3, rng=rng)
        fraction = len(masked_pairs) / tiny_dataset.train_matrix.nnz
        assert 0.2 < fraction < 0.4
